//! A bespoke implementation of `D⟨read/write register⟩` — the object of the
//! paper's Figure 2.
//!
//! A recoverable register cannot keep provenance in a bare 64-bit cell: if a
//! thread's write is overwritten before the thread persists its completion
//! tag, no amount of post-crash inspection of the cell can tell whether the
//! write ever took effect. This implementation therefore uses the standard
//! indirection idiom (shared with [`DetectableCas`](crate::DetectableCas)):
//! the register is a pointer to an immutable *value node* `{value, writer,
//! seq, superseded}`, and an installer marks its predecessor's `superseded`
//! flag (persisted) *before* swinging the pointer. A thread's write
//! provably took effect iff its node is current **or** superseded — both
//! survive crashes.
//!
//! This is also the first half of the §2.2 nesting demonstration: the DSS
//! queue's base objects (registers and CAS) can themselves be detectable.

use std::fmt;
use std::sync::Arc;

use dss_pmem::{
    tag, AppKind, AttachError, Backoff, FlushGranularity, Memory, NodePool, PAddr, PmemPool,
    Registry, SlotError, ThreadHandle, WORDS_PER_LINE,
};
use dss_spec::types::RegisterResp;

use crate::detect::DetectableCore;

// Node layout (4 words, line-aligned like the queue's nodes).
const F_VALUE: u64 = 0;
const F_WRITER_SEQ: u64 = 1;
const F_SUPERSEDED: u64 = 2;
const NODE_WORDS: u64 = 4;

// Register-local tags (same bit positions as the queue's enqueue tags; the
// objects never share an X word, so reuse is safe and keeps all tags above
// the 48 address bits).
const W_PREP: u64 = tag::ENQ_PREP;
const W_COMPL: u64 = tag::ENQ_COMPL;

// Fixed layout: [0:NULL][cur line][n X lines][initial node][region] — cur
// and each X entry on their own cache line (no false sharing).
const A_CUR: u64 = WORDS_PER_LINE;
const A_X_BASE: u64 = 2 * WORDS_PER_LINE;

/// Structure-kind word a file-backed register records in its pool
/// superblock.
pub const KIND_DETECTABLE_REGISTER: u64 = AppKind::DetectableRegister.word();

/// The register's pool layout, derived from `(nthreads, nodes_per_thread)`
/// alone (cf. the queue's `QueueLayout`).
struct RegisterLayout {
    init_node: u64,
    region: u64,
    reg_base: u64,
    words: u64,
}

impl RegisterLayout {
    fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        assert!(nthreads > 0 && nodes_per_thread > 0);
        let x_end = A_X_BASE + nthreads as u64 * WORDS_PER_LINE;
        let init_node = x_end.next_multiple_of(NODE_WORDS);
        let region = init_node + NODE_WORDS;
        let node_end = region + nodes_per_thread * nthreads as u64 * NODE_WORDS;
        let reg_base = node_end.next_multiple_of(WORDS_PER_LINE);
        let words = reg_base + Registry::<PmemPool>::region_words(nthreads);
        RegisterLayout { init_node, region, reg_base, words }
    }
}

/// The outcome reported by [`DetectableRegister::resolve`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResolvedWrite {
    /// The prepared write's value and the application-chosen sequence tag
    /// (the §2.1 disambiguation argument), if a write was ever prepared.
    pub op: Option<(u64, u64)>,
    /// `Some(Ok)` if the write took effect.
    pub resp: Option<RegisterResp>,
}

/// A detectable recoverable multi-writer register (`D⟨register⟩`).
///
/// Detectable writes go through [`prep_write`](Self::prep_write) /
/// [`exec_write`](Self::exec_write); plain [`write`](Self::write) and
/// [`read`](Self::read) are the non-detectable operations (Axiom 4). After
/// a crash no recovery phase is needed: [`resolve`](Self::resolve) inspects
/// persisted state only — the register recovers independently, like the
/// §3.3 queue variant.
///
/// Values are limited to 48 bits (they share a word with nothing, but this
/// keeps the example honest about tag budgets; larger payloads belong in
/// multi-word nodes like the queue's).
///
/// # Examples
///
/// ```
/// use dss_core::DetectableRegister;
/// use dss_spec::types::RegisterResp;
///
/// let r = DetectableRegister::new(2, 16);
/// let h0 = r.register_thread().unwrap();
/// let h1 = r.register_thread().unwrap();
/// r.prep_write(h0, 7, 1);
/// r.exec_write(h0);
/// assert_eq!(r.read(h1), 7);
/// let res = r.resolve(h0);
/// assert_eq!(res.op, Some((7, 1)));
/// assert_eq!(res.resp, Some(RegisterResp::Ok));
/// ```
pub struct DetectableRegister<M: Memory = PmemPool> {
    /// The shared detectability skeleton: pool, registry, EBR, backoff,
    /// and the per-thread `X` words (see [`DetectableCore`]).
    core: DetectableCore<M>,
    nodes: NodePool,
    /// Per-thread nodes this thread created that are awaiting retirement.
    /// A node may be retired once it is neither the register's current
    /// node nor referenced by the owner's `X` entry; only the owner ever
    /// retires its nodes, so `resolve` can always dereference `X` safely.
    pending: Box<[std::sync::Mutex<Vec<PAddr>>]>,
}

impl DetectableRegister {
    /// Creates a register (initial value 0) for `nthreads` threads with
    /// `nodes_per_thread` pre-allocated value nodes each, on a fresh
    /// line-granular [`PmemPool`].
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        Self::new_in(nthreads, nodes_per_thread, FlushGranularity::Line)
    }

    /// Creates a register on a **file-backed** pool at `path`
    /// (line-granular), recording [`KIND_DETECTABLE_REGISTER`] and the
    /// construction parameters in the superblock so
    /// [`attach`](Self::attach) needs only the path.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn create<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Result<Self, AttachError> {
        let layout = RegisterLayout::new(nthreads, nodes_per_thread);
        let pool = Arc::new(PmemPool::create(path, layout.words as usize, FlushGranularity::Line)?);
        pool.set_app_config(KIND_DETECTABLE_REGISTER, &[nthreads as u64, nodes_per_thread]);
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let r = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        r.format(layout.init_node);
        Ok(r)
    }

    /// Rebuilds a register from a pool file with no in-process state. The
    /// register recovers independently (no recovery phase): after
    /// [`begin_recovery`](Self::begin_recovery) +
    /// [`adopt_orphans`](Self::adopt_orphans), [`resolve`](Self::resolve)
    /// answers from persisted state alone.
    ///
    /// # Errors
    ///
    /// Any [`AttachError`], including [`AttachError::AppMismatch`] if the
    /// file holds a different structure.
    pub fn attach<P: AsRef<std::path::Path>>(path: P) -> Result<Self, AttachError> {
        let pool = Arc::new(PmemPool::attach(path)?);
        let found = pool.app_kind();
        if found != KIND_DETECTABLE_REGISTER {
            return Err(AttachError::AppMismatch { expected: KIND_DETECTABLE_REGISTER, found });
        }
        let [nthreads, nodes_per_thread, ..] = pool.app_config();
        if nthreads == 0 || nodes_per_thread == 0 {
            return Err(AttachError::Corrupt("register parameter words are zero"));
        }
        let nthreads = nthreads as usize;
        let layout = RegisterLayout::new(nthreads, nodes_per_thread);
        if (pool.capacity() as u64) < layout.words {
            return Err(AttachError::Corrupt("pool smaller than the register layout requires"));
        }
        let registry = Registry::attach(Arc::clone(&pool), layout.reg_base)?;
        let r = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        r.rebuild_allocator();
        Ok(r)
    }
}

impl<M: Memory> DetectableRegister<M> {
    /// Creates a register on a freshly created backend of type `M`
    /// ([`Memory::create`]) — the backend-generic constructor behind
    /// [`new`](DetectableRegister::new).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new_in(nthreads: usize, nodes_per_thread: u64, granularity: FlushGranularity) -> Self {
        let layout = RegisterLayout::new(nthreads, nodes_per_thread);
        let pool = Arc::new(M::create(layout.words as usize, granularity));
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let r = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        r.format(layout.init_node);
        r
    }

    /// The shared constructor tail: in-DRAM side tables over an existing
    /// pool + registry — everything `attach` must rebuild rather than map.
    fn assemble(
        pool: Arc<M>,
        registry: Registry<M>,
        layout: &RegisterLayout,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Self {
        let nodes =
            NodePool::new(PAddr::from_index(layout.region), NODE_WORDS, nodes_per_thread, nthreads);
        DetectableRegister {
            core: DetectableCore::new(pool, registry, nthreads, A_X_BASE, WORDS_PER_LINE),
            nodes,
            pending: (0..nthreads).map(|_| std::sync::Mutex::new(Vec::new())).collect(),
        }
    }

    /// Writes and persists the initial register state (fresh pools only —
    /// never run on attach).
    fn format(&self, init_node: u64) {
        let init = PAddr::from_index(init_node);
        self.core.pool.store(init.offset(F_VALUE), 0);
        self.core.pool.store(init.offset(F_WRITER_SEQ), u64::MAX); // no writer
        self.core.pool.store(init.offset(F_SUPERSEDED), 0);
        self.core.pool.flush(init);
        self.core.pool.store(self.cur_addr(), init.to_word());
        self.core.pool.flush(self.cur_addr());
        self.core.format_x();
        self.core.pool.drain();
    }

    /// Enables or disables bounded exponential backoff after failed
    /// install CAS. Default off.
    pub fn set_backoff(&self, on: bool) {
        self.core.set_backoff(on);
    }

    /// Whether contention management is enabled.
    pub fn backoff_enabled(&self) -> bool {
        self.core.backoff_enabled()
    }

    fn new_backoff(&self) -> Backoff<'_> {
        self.core.new_backoff()
    }

    fn cur_addr(&self) -> PAddr {
        PAddr::from_index(A_CUR)
    }

    // Handle validity is the core's concern; see DetectableCore::x_addr.
    fn x_addr(&self, slot: usize) -> PAddr {
        self.core.x_addr(slot)
    }

    /// The register's persistent-memory pool.
    pub fn pool(&self) -> &Arc<M> {
        self.core.pool()
    }

    /// The register's persistent thread-slot registry.
    pub fn registry(&self) -> &Registry<M> {
        self.core.registry()
    }

    /// Claims a free registry slot; see
    /// [`DssQueue::register_thread`](crate::DssQueue::register_thread).
    ///
    /// # Errors
    ///
    /// [`SlotError::Exhausted`] when all slots are taken.
    pub fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
        self.core.register_thread()
    }

    /// Returns a handle's slot to the registry.
    ///
    /// # Errors
    ///
    /// [`SlotError::StaleHandle`] / [`SlotError::ForeignHandle`] per
    /// [`Registry::release`].
    pub fn release_thread(&self, h: ThreadHandle) -> Result<(), SlotError> {
        self.core.release_thread(h)
    }

    /// Marks the crash boundary in the registry (idempotent per crash).
    /// The register itself needs no recovery phase — [`resolve`]
    /// (Self::resolve) reads persisted state only — so this exists purely
    /// to make dead threads' slots adoptable.
    pub fn begin_recovery(&self) {
        self.core.begin_recovery();
    }

    /// Adopts one orphaned slot (fresh lease, EBR state inherited).
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] / [`SlotError::NotOrphaned`] per
    /// [`Registry::adopt`].
    pub fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
        self.core.adopt(slot)
    }

    /// [`adopt`](Self::adopt) over every orphaned slot, ascending.
    pub fn adopt_orphans(&self) -> Vec<ThreadHandle> {
        self.core.adopt_orphans()
    }

    fn alloc(&self, tid: usize) -> PAddr {
        self.nodes
            .alloc_with_reclaim(tid, &self.core.ebr)
            .unwrap_or_else(|| panic!("register node pool exhausted (size it for the workload)"))
    }

    /// Retires the caller's past nodes that are no longer the current node
    /// (nor the caller's `X` node, which is excluded at push time); called
    /// from `prep_write`/`write` so retirement needs no extra API.
    fn sweep_pending(&self, tid: usize) {
        let mut pending = self.pending[tid].lock().unwrap_or_else(|e| e.into_inner());
        let cur = self.core.pool.peek(self.cur_addr());
        let x = tag::addr_of(self.core.pool.peek(self.x_addr(tid)));
        pending.retain(|&p| {
            if p.to_word() != cur && p != x {
                self.core.ebr.retire(tid, p);
                false
            } else {
                true
            }
        });
    }

    fn push_pending(&self, tid: usize, node: PAddr) {
        self.pending[tid].lock().unwrap_or_else(|e| e.into_inner()).push(node);
    }

    /// **prep-write(val, seq)**: allocates and persists a value node, then
    /// announces it in `X[tid]` with the prepared tag. `seq` is the
    /// application's disambiguation tag (§2.1); a parity bit suffices.
    ///
    /// # Panics
    ///
    /// Panics if `val` exceeds 48 bits or the node pool is exhausted.
    pub fn prep_write(&self, h: ThreadHandle, val: u64, seq: u64) {
        let tid = h.slot();
        assert!(val <= tag::ADDR_MASK, "register values are limited to 48 bits");
        self.sweep_pending(tid);
        let old = tag::addr_of(self.core.pool.load(self.x_addr(tid)));
        let node = self.alloc(tid);
        self.core.pool.store(node.offset(F_VALUE), val);
        self.core.pool.store(node.offset(F_WRITER_SEQ), pack(tid, seq));
        self.core.pool.store(node.offset(F_SUPERSEDED), 0);
        self.core.pool.flush(node);
        // Ordering point: the announce must not persist ahead of the node
        // it names.
        self.core.pool.drain_lines(&[
            node.offset(F_VALUE),
            node.offset(F_WRITER_SEQ),
            node.offset(F_SUPERSEDED),
        ]);
        // Announce + the durable-before-return drain (DetectableCore).
        self.core.announce(tid, tag::set(node.to_word(), W_PREP));
        // The previous announcement node is no longer referenced by X[tid];
        // it becomes retirable once it also stops being the current node.
        if !old.is_null() {
            self.push_pending(tid, old);
        }
    }

    /// **exec-write()**: installs the prepared node, marking the previous
    /// node superseded (persisted) first, so every installed node remains
    /// provably installed across crashes.
    ///
    /// # Panics
    ///
    /// Panics if no write is prepared for `tid`.
    pub fn exec_write(&self, h: ThreadHandle) {
        let tid = h.slot();
        let _g = self.core.pin(tid);
        let xa = self.x_addr(tid);
        let x = self.core.pool.load(xa);
        assert!(tag::has(x, W_PREP), "exec-write without a prepared write");
        let node = tag::addr_of(x);
        let mut bo = self.new_backoff();
        loop {
            let cur_w = self.core.pool.load(self.cur_addr());
            let cur = tag::addr_of(cur_w);
            // Mark the incumbent superseded *before* replacing it: its
            // owner must be able to prove installation even after we win.
            self.core.pool.store(cur.offset(F_SUPERSEDED), 1);
            self.core.pool.flush(cur.offset(F_SUPERSEDED));
            // The announce and the incumbent's superseded mark must be
            // persistent before the install can take effect — resolve
            // proves installation through either of them.
            self.core.pool.drain_lines(&[cur.offset(F_SUPERSEDED), xa]);
            if self.core.pool.cas(self.cur_addr(), cur_w, node.to_word()).is_ok() {
                self.core.pool.flush(self.cur_addr());
                // Ordering point: the completion mark must not persist
                // ahead of the installed pointer it certifies.
                self.core.pool.drain_line(self.cur_addr());
                self.core.complete(tid, tag::set(x, W_COMPL));
                self.core.pool.drain();
                return;
            }
            bo.spin();
        }
    }

    /// Non-detectable **write(val)** (Axiom 4): the same installation loop
    /// with every access to `X` omitted.
    ///
    /// # Panics
    ///
    /// Panics if `val` exceeds 48 bits or the node pool is exhausted.
    pub fn write(&self, h: ThreadHandle, val: u64) {
        let tid = h.slot();
        assert!(val <= tag::ADDR_MASK, "register values are limited to 48 bits");
        let _g = self.core.pin(tid);
        self.sweep_pending(tid);
        let node = self.alloc(tid);
        self.core.pool.store(node.offset(F_VALUE), val);
        self.core.pool.store(node.offset(F_WRITER_SEQ), u64::MAX);
        self.core.pool.store(node.offset(F_SUPERSEDED), 0);
        self.core.pool.flush(node);
        let mut bo = self.new_backoff();
        loop {
            let cur_w = self.core.pool.load(self.cur_addr());
            let cur = tag::addr_of(cur_w);
            self.core.pool.store(cur.offset(F_SUPERSEDED), 1);
            self.core.pool.flush(cur.offset(F_SUPERSEDED));
            // The new node and the incumbent's superseded mark must be
            // persistent before the install can take effect.
            self.core.pool.drain_lines(&[
                cur.offset(F_SUPERSEDED),
                node.offset(F_VALUE),
                node.offset(F_WRITER_SEQ),
                node.offset(F_SUPERSEDED),
            ]);
            if self.core.pool.cas(self.cur_addr(), cur_w, node.to_word()).is_ok() {
                self.core.pool.flush(self.cur_addr());
                self.core.pool.drain();
                // X never references a plain write's node, so it joins the
                // owner's pending list right away; it is retired by a later
                // sweep once it stops being the current node.
                self.push_pending(tid, node);
                return;
            }
            bo.spin();
        }
    }

    /// **read()** (plain): the current value.
    pub fn read(&self, h: ThreadHandle) -> u64 {
        let _g = self.core.pin(h.slot());
        let cur = tag::addr_of(self.core.pool.load(self.cur_addr()));
        self.core.pool.load(cur.offset(F_VALUE))
    }

    /// **resolve()**: reports the most recently prepared write and whether
    /// it took effect. Needs no prior recovery phase; callable any time,
    /// idempotent.
    pub fn resolve(&self, h: ThreadHandle) -> ResolvedWrite {
        let x = self.core.pool.load(self.x_addr(h.slot()));
        if !tag::has(x, W_PREP) {
            return ResolvedWrite { op: None, resp: None };
        }
        let node = tag::addr_of(x);
        let (_, seq) = unpack(self.core.pool.load(node.offset(F_WRITER_SEQ)));
        let val = self.core.pool.load(node.offset(F_VALUE));
        let effective = tag::has(x, W_COMPL)
            || self.core.pool.load(self.cur_addr()) == node.to_word()
            || self.core.pool.load(node.offset(F_SUPERSEDED)) == 1;
        ResolvedWrite {
            op: Some((val, seq)),
            resp: if effective { Some(RegisterResp::Ok) } else { None },
        }
    }

    /// Rebuilds the volatile allocator after a crash: the current node and
    /// every `X`-referenced node stay allocated.
    pub fn rebuild_allocator(&self) {
        let mut live = vec![tag::addr_of(self.core.pool.load(self.cur_addr()))];
        for i in 0..self.core.nthreads {
            let d = tag::addr_of(self.core.pool.load(self.x_addr(i)));
            if !d.is_null() {
                live.push(d);
            }
        }
        self.nodes.rebuild(live);
        self.core.ebr.reset();
        for p in self.pending.iter() {
            p.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

fn pack(pid: usize, seq: u64) -> u64 {
    ((pid as u64) << 48) | (seq & tag::ADDR_MASK)
}

fn unpack(w: u64) -> (usize, u64) {
    ((w >> 48) as usize, w & tag::ADDR_MASK)
}

impl<M: Memory> fmt::Debug for DetectableRegister<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetectableRegister")
            .field("nthreads", &self.core.nthreads)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_pmem::WritebackAdversary;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn run_crash_at<F: FnOnce()>(r: &DetectableRegister, k: u64, f: F) -> bool {
        r.pool().arm_crash_after(k);
        let res = catch_unwind(AssertUnwindSafe(f));
        r.pool().disarm_crash();
        match res {
            Ok(()) => false,
            Err(p) if p.downcast_ref::<dss_pmem::CrashSignal>().is_some() => true,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    #[test]
    fn read_write_basic() {
        let r = DetectableRegister::new(2, 8);
        let h0 = r.register_thread().unwrap();
        let h1 = r.register_thread().unwrap();
        assert_eq!(r.read(h0), 0);
        r.write(h0, 5);
        assert_eq!(r.read(h1), 5);
        r.write(h1, 9);
        assert_eq!(r.read(h0), 9);
    }

    #[test]
    fn detectable_write_resolves_ok() {
        let r = DetectableRegister::new(1, 8);
        let h0 = r.register_thread().unwrap();
        r.prep_write(h0, 3, 0);
        assert_eq!(r.resolve(h0), ResolvedWrite { op: Some((3, 0)), resp: None });
        r.exec_write(h0);
        assert_eq!(r.resolve(h0), ResolvedWrite { op: Some((3, 0)), resp: Some(RegisterResp::Ok) });
        assert_eq!(r.read(h0), 3);
    }

    #[test]
    fn overwritten_write_still_resolves_ok() {
        // The superseded flag preserves provenance after an overwrite.
        let r = DetectableRegister::new(2, 8);
        let h0 = r.register_thread().unwrap();
        let h1 = r.register_thread().unwrap();
        r.prep_write(h0, 3, 1);
        r.exec_write(h0);
        r.write(h1, 4); // overwrites
        assert_eq!(r.read(h0), 4);
        assert_eq!(r.resolve(h0), ResolvedWrite { op: Some((3, 1)), resp: Some(RegisterResp::Ok) });
    }

    #[test]
    fn figure2_sweep_over_crash_points() {
        // prep-write(1); exec-write(1) with a crash at every pmem-op index:
        // resolve must answer exactly per Figure 2's allowed outcomes.
        for adv in [
            WritebackAdversary::None,
            WritebackAdversary::All,
            WritebackAdversary::Random { seed: 3, prob: 0.5 },
        ] {
            for k in 1..40 {
                let r = DetectableRegister::new(1, 8);
                let h0 = r.register_thread().unwrap();
                let crashed = run_crash_at(&r, k, || {
                    r.prep_write(h0, 1, 9);
                    r.exec_write(h0);
                });
                if !crashed {
                    break;
                }
                r.pool().crash(&adv);
                r.rebuild_allocator();
                let value_now = r.read(h0);
                match r.resolve(h0) {
                    ResolvedWrite { op: None, resp: None } => {
                        assert_eq!(value_now, 0, "k={k} {adv:?}")
                    }
                    ResolvedWrite { op: Some((1, 9)), resp: Some(RegisterResp::Ok) } => {
                        assert_eq!(value_now, 1, "k={k} {adv:?}: effect means value persisted")
                    }
                    ResolvedWrite { op: Some((1, 9)), resp: None } => {
                        assert_eq!(value_now, 0, "k={k} {adv:?}: no effect means old value")
                    }
                    other => panic!("k={k} {adv:?}: impossible resolution {other:?}"),
                }
            }
        }
    }

    #[test]
    fn seq_tag_disambiguates_identical_writes() {
        let r = DetectableRegister::new(1, 8);
        let h0 = r.register_thread().unwrap();
        r.prep_write(h0, 5, 0);
        r.exec_write(h0);
        r.prep_write(h0, 5, 1); // same value, new op
        assert_eq!(r.resolve(h0), ResolvedWrite { op: Some((5, 1)), resp: None });
    }

    #[test]
    fn concurrent_writers_last_value_is_someones() {
        use std::sync::Arc;
        let r = Arc::new(DetectableRegister::new(4, 64));
        let hs: Vec<_> = (0..4).map(|_| r.register_thread().unwrap()).collect();
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let r = Arc::clone(&r);
                let h = hs[tid];
                std::thread::spawn(move || {
                    for i in 0..200 {
                        r.prep_write(h, (tid as u64) << 16 | i, i);
                        r.exec_write(h);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let v = r.read(hs[0]);
        let tid = v >> 16;
        assert!(tid < 4 && (v & 0xffff) == 199, "final value {v:#x} is someone's last write");
        // Every thread's last write resolves as effective.
        for &h in &hs {
            assert_eq!(r.resolve(h).resp, Some(RegisterResp::Ok));
        }
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn oversized_value_rejected() {
        let r = DetectableRegister::new(1, 4);
        let h0 = r.register_thread().unwrap();
        r.write(h0, 1 << 50);
    }
}
