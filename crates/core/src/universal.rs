//! A recoverable, detectable universal construction.
//!
//! §2.2: "a wait-free recoverable implementation of `D⟨T⟩` for any
//! conventional type `T` can be obtained in the shared memory model using
//! Herlihy's universal construction, which was shown by Berryhill, Golab,
//! and Tripunitara to yield recoverable linearizability", and the paper
//! believes it "can be extended easily … to the more general model with
//! volatile cache and explicit persistence instructions". This module is
//! that extension, in its lock-free form:
//!
//! * The object is a persistent append-only list of *operation nodes*;
//!   consensus on each successor is a single-word CAS on the `next`
//!   pointer, flushed before the tail hint advances.
//! * The abstract state is never materialized in memory — it is recomputed
//!   by replaying the list through the [`SequentialSpec`], so there is
//!   nothing else to persist.
//! * Detectability comes for free: `prep` persists the operation node and
//!   announces it in `X[tid]`; `resolve` checks whether the announced node
//!   is reachable in the list (its linking CAS persisted) and, if so,
//!   replays the list to recompute the response. No recovery phase exists
//!   at all — this object is "independent recovery" in its purest form.
//!
//! The price is the classic one for universal constructions: the history
//! list grows without bound (ops are never reclaimed), so this is a tool
//! for moderate op-counts, demonstrations, and model checking — not a
//! high-throughput container. The bespoke [`DssQueue`](crate::DssQueue)
//! exists precisely because one can do much better for a specific type.
//!
//! Operations are serialized into a fixed number of 64-bit words via
//! [`OpWords`]; implementations are provided for all the canonical types.

use std::fmt;
use std::sync::Arc;

use dss_pmem::{
    tag, AppKind, AttachError, FlushGranularity, Memory, PAddr, PmemPool, Registry, SlotError,
    ThreadHandle, WORDS_PER_LINE,
};

use crate::detect::DetectableCore;
use dss_spec::types::{
    CasOp, CasSpec, CounterOp, CounterSpec, QueueOp, QueueSpec, RegisterOp, RegisterSpec, StackOp,
    StackSpec,
};
use dss_spec::{ProcId, SequentialSpec};

/// Fixed-width serialization of a specification's operations, for storage
/// in persistent-memory words.
///
/// `encode`/`decode` must round-trip: `decode(encode(op)) == op`.
pub trait OpWords: SequentialSpec {
    /// Serializes an operation into three words.
    fn encode(op: &Self::Op) -> [u64; 3];
    /// Deserializes an operation.
    ///
    /// # Panics
    ///
    /// May panic on words not produced by [`encode`](Self::encode).
    fn decode(words: [u64; 3]) -> Self::Op;
}

/// What [`Universal::resolve`] reports: the announced `(op, seq)` pair if
/// one persisted, and the operation's recomputed response if its history
/// link persisted too.
pub type UniResolved<T> =
    (Option<(<T as SequentialSpec>::Op, u64)>, Option<<T as SequentialSpec>::Resp>);

// Node layout: 8 words (one cache line).
const F_NEXT: u64 = 0;
const F_PID: u64 = 1;
const F_SEQ: u64 = 2;
const F_OP0: u64 = 3;
const F_OP1: u64 = 4;
const F_OP2: u64 = 5;
const NODE_WORDS: u64 = 8;

const U_PREP: u64 = tag::ENQ_PREP;
const U_COMPL: u64 = tag::ENQ_COMPL;

// Layout: [0:NULL][1:tail hint][2..2+n:X][origin node][node slots...].
const A_TAIL_HINT: u64 = 1;
const A_X_BASE: u64 = 2;

/// Structure-kind word a file-backed universal object records in its pool
/// superblock. The spec type `T` itself is not persisted — [`attach`]
/// (Universal::attach) takes the spec value from the caller and trusts the
/// caller to supply the same type the file was created with.
pub const KIND_UNIVERSAL: u64 = AppKind::Universal.word();

/// The universal object's pool layout, derived from `(nthreads, max_ops)`
/// alone (cf. the queue's `QueueLayout`).
struct UniversalLayout {
    origin: u64,
    slots_base: u64,
    reg_base: u64,
    words: u64,
}

impl UniversalLayout {
    fn new(nthreads: usize, max_ops: u64) -> Self {
        assert!(nthreads > 0 && max_ops > 0);
        let x_end = A_X_BASE + nthreads as u64;
        let origin = x_end.next_multiple_of(NODE_WORDS);
        let slots_base = origin + NODE_WORDS;
        let node_end = slots_base + max_ops * NODE_WORDS;
        let reg_base = node_end.next_multiple_of(WORDS_PER_LINE);
        let words = reg_base + Registry::<PmemPool>::region_words(nthreads);
        UniversalLayout { origin, slots_base, reg_base, words }
    }
}

/// A lock-free recoverable universal construction of `D⟨T⟩` for any
/// [`SequentialSpec`] whose operations implement [`OpWords`].
///
/// # Examples
///
/// ```
/// use dss_core::Universal;
/// use dss_spec::types::{StackOp, StackResp, StackSpec};
///
/// let st = Universal::new(StackSpec, 2, 100);
/// let h0 = st.register_thread().unwrap();
/// let h1 = st.register_thread().unwrap();
/// st.prep(h0, StackOp::Push(7), 0);
/// assert_eq!(st.exec(h0), StackResp::Ok);
/// assert_eq!(st.plain(h1, StackOp::Pop), StackResp::Value(7));
/// // Detection after the fact:
/// let (op, resp) = st.resolve(h0);
/// assert_eq!(op, Some((StackOp::Push(7), 0)));
/// assert_eq!(resp, Some(StackResp::Ok));
/// ```
pub struct Universal<T: SequentialSpec, M: Memory = PmemPool> {
    spec: T,
    /// The shared detectability skeleton (see [`DetectableCore`]). The
    /// universal construction packs its `X` words at stride 1 — the
    /// history list dominates the footprint, so false sharing on `X` is
    /// not worth a line per thread here.
    core: DetectableCore<M>,
    origin: PAddr,
    slots_base: u64,
    slots: u64,
    next_slot: std::sync::atomic::AtomicU64,
}

impl<T: OpWords> Universal<T> {
    /// Creates the object for `nthreads` threads with capacity for
    /// `max_ops` operations over its lifetime (the history list is never
    /// reclaimed), on a fresh line-granular [`PmemPool`].
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `max_ops` is zero.
    pub fn new(spec: T, nthreads: usize, max_ops: u64) -> Self {
        Self::new_in(spec, nthreads, max_ops, FlushGranularity::Line)
    }

    /// Creates the object on a **file-backed** pool at `path`
    /// (line-granular), recording [`KIND_UNIVERSAL`] and the construction
    /// parameters in the superblock. The spec value itself is volatile
    /// code, not data, so [`attach`](Self::attach) takes it again.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `max_ops` is zero.
    pub fn create<P: AsRef<std::path::Path>>(
        spec: T,
        path: P,
        nthreads: usize,
        max_ops: u64,
    ) -> Result<Self, AttachError> {
        let layout = UniversalLayout::new(nthreads, max_ops);
        let pool = Arc::new(PmemPool::create(path, layout.words as usize, FlushGranularity::Line)?);
        pool.set_app_config(KIND_UNIVERSAL, &[nthreads as u64, max_ops]);
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let u = Self::assemble(spec, pool, registry, &layout, nthreads, max_ops);
        u.format();
        Ok(u)
    }

    /// Rebuilds the object from a pool file with no in-process state; the
    /// caller supplies the spec value (the history replays through it, so
    /// it must be the type the file was created with). No recovery phase
    /// exists: [`resolve`](Self::resolve) replays the persisted history
    /// directly after [`begin_recovery`](Self::begin_recovery) +
    /// [`adopt_orphans`](Self::adopt_orphans).
    ///
    /// # Errors
    ///
    /// Any [`AttachError`], including [`AttachError::AppMismatch`] if the
    /// file holds a different structure.
    pub fn attach<P: AsRef<std::path::Path>>(spec: T, path: P) -> Result<Self, AttachError> {
        let pool = Arc::new(PmemPool::attach(path)?);
        let found = pool.app_kind();
        if found != KIND_UNIVERSAL {
            return Err(AttachError::AppMismatch { expected: KIND_UNIVERSAL, found });
        }
        let [nthreads, max_ops, ..] = pool.app_config();
        if nthreads == 0 || max_ops == 0 {
            return Err(AttachError::Corrupt("universal parameter words are zero"));
        }
        let nthreads = nthreads as usize;
        let layout = UniversalLayout::new(nthreads, max_ops);
        if (pool.capacity() as u64) < layout.words {
            return Err(AttachError::Corrupt("pool smaller than the universal layout requires"));
        }
        let registry = Registry::attach(Arc::clone(&pool), layout.reg_base)?;
        let u = Self::assemble(spec, pool, registry, &layout, nthreads, max_ops);
        u.rebuild_allocator();
        Ok(u)
    }
}

impl<T: OpWords, M: Memory> Universal<T, M> {
    /// Creates the object on a freshly created backend of type `M`
    /// ([`Memory::create`]) — the backend-generic constructor behind
    /// [`new`](Universal::new).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `max_ops` is zero.
    pub fn new_in(spec: T, nthreads: usize, max_ops: u64, granularity: FlushGranularity) -> Self {
        let layout = UniversalLayout::new(nthreads, max_ops);
        let pool = Arc::new(M::create(layout.words as usize, granularity));
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let u = Self::assemble(spec, pool, registry, &layout, nthreads, max_ops);
        u.format();
        u
    }

    /// The shared constructor tail: in-DRAM side tables over an existing
    /// pool + registry — everything `attach` must rebuild rather than map.
    fn assemble(
        spec: T,
        pool: Arc<M>,
        registry: Registry<M>,
        layout: &UniversalLayout,
        nthreads: usize,
        max_ops: u64,
    ) -> Self {
        Universal {
            spec,
            core: DetectableCore::new(pool, registry, nthreads, A_X_BASE, 1),
            origin: PAddr::from_index(layout.origin),
            slots_base: layout.slots_base,
            slots: max_ops,
            next_slot: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Writes and persists the initial object state (fresh pools only —
    /// never run on attach).
    fn format(&self) {
        self.core.pool.store(self.origin.offset(F_NEXT), 0);
        self.core.pool.flush(self.origin.offset(F_NEXT));
        self.core.pool.store(PAddr::from_index(A_TAIL_HINT), self.origin.to_word());
        self.core.pool.flush(PAddr::from_index(A_TAIL_HINT));
        self.core.format_x();
        self.core.pool.drain();
    }

    // Handle validity is the core's concern; see DetectableCore::x_addr.
    fn x_addr(&self, tid: usize) -> PAddr {
        self.core.x_addr(tid)
    }

    /// The object's persistent-memory pool.
    pub fn pool(&self) -> &Arc<M> {
        self.core.pool()
    }

    /// The persistent slot registry governing thread identity.
    pub fn registry(&self) -> &Registry<M> {
        self.core.registry()
    }

    /// Claims a free slot and returns the [`ThreadHandle`] every operation
    /// requires. Fails with [`SlotError::Exhausted`] once all `nthreads`
    /// slots are taken.
    pub fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
        self.core.register_thread()
    }

    /// Returns a handle's slot to the free pool for reuse.
    pub fn release_thread(&self, h: ThreadHandle) -> Result<(), SlotError> {
        self.core.release_thread(h)
    }

    /// Marks the crash boundary in the registry: every slot LIVE at the
    /// crash becomes ORPHANED. The universal construction has no recovery
    /// phase of its own — [`resolve`](Self::resolve) replays the persisted
    /// history directly — so this exists purely so that dead threads'
    /// slots can be reclaimed via [`adopt`](Self::adopt) /
    /// [`adopt_orphans`](Self::adopt_orphans).
    pub fn begin_recovery(&self) {
        self.core.begin_recovery();
    }

    /// Adopts one orphaned slot, re-LIVE-ing it under a fresh handle.
    pub fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
        self.core.adopt(slot)
    }

    /// Adopts every orphaned slot in ascending order.
    pub fn adopt_orphans(&self) -> Vec<ThreadHandle> {
        self.core.adopt_orphans()
    }

    fn alloc(&self) -> PAddr {
        use std::sync::atomic::Ordering::Relaxed;
        let i = self.next_slot.fetch_add(1, Relaxed);
        assert!(i < self.slots, "universal construction capacity exhausted");
        PAddr::from_index(self.slots_base + i * NODE_WORDS)
    }

    /// Recomputes allocation state after a crash: slots whose nodes were
    /// never linked are reused. (Conservative: it simply skips past every
    /// slot ever handed out that is reachable, plus announced ones.)
    pub fn rebuild_allocator(&self) {
        use std::sync::atomic::Ordering::Relaxed;
        let mut max_used = 0u64;
        let mut mark = |a: PAddr| {
            if a.index() >= self.slots_base {
                max_used = max_used.max((a.index() - self.slots_base) / NODE_WORDS + 1);
            }
        };
        let mut cur = self.origin;
        loop {
            let next = tag::addr_of(self.core.pool.load(cur.offset(F_NEXT)));
            if next.is_null() {
                break;
            }
            mark(next);
            cur = next;
        }
        for i in 0..self.core.nthreads() {
            let d = tag::addr_of(self.core.pool.load(self.x_addr(i)));
            if !d.is_null() {
                mark(d);
            }
        }
        self.next_slot.store(max_used, Relaxed);
    }

    fn init_node(&self, node: PAddr, pid: ProcId, seq: u64, op: &T::Op) {
        let w = T::encode(op);
        self.core.pool.store(node.offset(F_NEXT), 0);
        self.core.pool.store(node.offset(F_PID), pid as u64);
        self.core.pool.store(node.offset(F_SEQ), seq);
        self.core.pool.store(node.offset(F_OP0), w[0]);
        self.core.pool.store(node.offset(F_OP1), w[1]);
        self.core.pool.store(node.offset(F_OP2), w[2]);
        self.core.pool.flush(node); // one line
    }

    /// Appends `node` to the history list (lock-free consensus per link),
    /// returning its predecessor.
    fn append(&self, node: PAddr) {
        let hint = PAddr::from_index(A_TAIL_HINT);
        loop {
            let last_w = self.core.pool.load(hint);
            let last = tag::addr_of(last_w);
            let next_w = self.core.pool.load(last.offset(F_NEXT));
            let next = tag::addr_of(next_w);
            if !next.is_null() {
                // Help: persist the link before advancing the hint — the
                // hint must never point past an unpersisted link, or a
                // post-crash append could build on an unreachable node.
                self.core.pool.flush(last.offset(F_NEXT));
                self.core.pool.drain_line(last.offset(F_NEXT));
                let _ = self.core.pool.cas(hint, last_w, next.to_word());
                continue;
            }
            // The node's contents must be persistent before its link can
            // take effect — replay decodes whatever the line holds.
            self.core.pool.drain_line(node.offset(F_NEXT));
            if self.core.pool.cas(last.offset(F_NEXT), 0, node.to_word()).is_ok() {
                self.core.pool.flush(last.offset(F_NEXT));
                self.core.pool.drain_line(last.offset(F_NEXT));
                let _ = self.core.pool.cas(hint, last_w, node.to_word());
                return;
            }
        }
    }

    /// Replays the persisted history, returning the final state and, if
    /// `until` is reached, the response of the operation at `until`.
    fn replay(&self, until: Option<PAddr>) -> (T::State, Option<T::Resp>) {
        let mut state = self.spec.initial();
        let mut wanted = None;
        let mut cur = self.origin;
        loop {
            let next = tag::addr_of(self.core.pool.load(cur.offset(F_NEXT)));
            if next.is_null() {
                return (state, wanted);
            }
            let pid = self.core.pool.load(next.offset(F_PID)) as usize;
            let op = T::decode([
                self.core.pool.load(next.offset(F_OP0)),
                self.core.pool.load(next.offset(F_OP1)),
                self.core.pool.load(next.offset(F_OP2)),
            ]);
            let (s, r) = self
                .spec
                .apply(&state, &op, pid)
                .expect("base types are total; illegal op in history");
            state = s;
            if until == Some(next) {
                wanted = Some(r);
            }
            cur = next;
        }
    }

    /// **prep(op, seq)**: persists an operation node and announces it.
    pub fn prep(&self, h: ThreadHandle, op: T::Op, seq: u64) {
        let tid = h.slot();
        let node = self.alloc();
        self.init_node(node, tid, seq, &op);
        // Ordering point: the announce must not persist ahead of the node
        // it names.
        self.core.pool.drain_line(node.offset(F_NEXT));
        // Announce + the durable-before-return drain (DetectableCore).
        self.core.announce(tid, tag::set(node.to_word(), U_PREP));
    }

    /// **exec()**: appends the prepared operation to the history and
    /// returns its response.
    ///
    /// # Panics
    ///
    /// Panics if no operation is prepared (or it already executed).
    pub fn exec(&self, h: ThreadHandle) -> T::Resp {
        let xa = self.x_addr(h.slot());
        let x = self.core.pool.load(xa);
        assert!(
            tag::has(x, U_PREP) && !tag::has(x, U_COMPL),
            "exec without a pending prepared operation"
        );
        let node = tag::addr_of(x);
        // The announce must be persistent before the link can take effect:
        // resolve reports the op's effect only through the announced node.
        self.core.pool.drain_line(xa);
        self.append(node);
        self.core.complete(h.slot(), tag::set(x, U_COMPL));
        self.replay(Some(node)).1.expect("appended node is reachable")
    }

    /// The non-detectable operation (Axiom 4): append without touching `X`.
    pub fn plain(&self, h: ThreadHandle, op: T::Op) -> T::Resp {
        let node = self.alloc();
        self.init_node(node, h.slot(), 0, &op);
        self.append(node);
        self.replay(Some(node)).1.expect("appended node is reachable")
    }

    /// **resolve()**: reports the announced operation and, if its link
    /// persisted (it is reachable in the history), its recomputed response.
    pub fn resolve(&self, h: ThreadHandle) -> UniResolved<T> {
        let x = self.core.pool.load(self.x_addr(h.slot()));
        if !tag::has(x, U_PREP) {
            return (None, None);
        }
        let node = tag::addr_of(x);
        let op = T::decode([
            self.core.pool.load(node.offset(F_OP0)),
            self.core.pool.load(node.offset(F_OP1)),
            self.core.pool.load(node.offset(F_OP2)),
        ]);
        let seq = self.core.pool.load(node.offset(F_SEQ));
        let resp = self.replay(Some(node)).1;
        (Some((op, seq)), resp)
    }

    /// The object's current abstract state, recomputed from the history.
    pub fn state(&self) -> T::State {
        self.replay(None).0
    }
}

impl<T: SequentialSpec, M: Memory> fmt::Debug for Universal<T, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Universal")
            .field("nthreads", &self.core.nthreads())
            .field("slots", &self.slots)
            .finish_non_exhaustive()
    }
}

// --- OpWords implementations for the canonical types ---------------------

impl OpWords for RegisterSpec {
    fn encode(op: &RegisterOp) -> [u64; 3] {
        match op {
            RegisterOp::Read => [0, 0, 0],
            RegisterOp::Write(v) => [1, *v, 0],
        }
    }
    fn decode(w: [u64; 3]) -> RegisterOp {
        match w[0] {
            0 => RegisterOp::Read,
            1 => RegisterOp::Write(w[1]),
            d => panic!("bad register op discriminant {d}"),
        }
    }
}

impl OpWords for CasSpec {
    fn encode(op: &CasOp) -> [u64; 3] {
        match op {
            CasOp::Read => [0, 0, 0],
            CasOp::Cas { expected, new } => [1, *expected, *new],
        }
    }
    fn decode(w: [u64; 3]) -> CasOp {
        match w[0] {
            0 => CasOp::Read,
            1 => CasOp::Cas { expected: w[1], new: w[2] },
            d => panic!("bad CAS op discriminant {d}"),
        }
    }
}

impl OpWords for CounterSpec {
    fn encode(op: &CounterOp) -> [u64; 3] {
        match op {
            CounterOp::Read => [0, 0, 0],
            CounterOp::FetchAdd(d) => [1, *d, 0],
        }
    }
    fn decode(w: [u64; 3]) -> CounterOp {
        match w[0] {
            0 => CounterOp::Read,
            1 => CounterOp::FetchAdd(w[1]),
            d => panic!("bad counter op discriminant {d}"),
        }
    }
}

impl OpWords for QueueSpec {
    fn encode(op: &QueueOp) -> [u64; 3] {
        match op {
            QueueOp::Enqueue(v) => [0, *v, 0],
            QueueOp::Dequeue => [1, 0, 0],
        }
    }
    fn decode(w: [u64; 3]) -> QueueOp {
        match w[0] {
            0 => QueueOp::Enqueue(w[1]),
            1 => QueueOp::Dequeue,
            d => panic!("bad queue op discriminant {d}"),
        }
    }
}

impl OpWords for StackSpec {
    fn encode(op: &StackOp) -> [u64; 3] {
        match op {
            StackOp::Push(v) => [0, *v, 0],
            StackOp::Pop => [1, 0, 0],
        }
    }
    fn decode(w: [u64; 3]) -> StackOp {
        match w[0] {
            0 => StackOp::Push(w[1]),
            1 => StackOp::Pop,
            d => panic!("bad stack op discriminant {d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_pmem::WritebackAdversary;
    use dss_spec::types::{CounterResp, QueueResp, StackResp};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn queue_via_universal_construction() {
        let q = Universal::new(QueueSpec, 2, 64);
        let h0 = q.register_thread().unwrap();
        let h1 = q.register_thread().unwrap();
        assert_eq!(q.plain(h0, QueueOp::Enqueue(1)), QueueResp::Ok);
        assert_eq!(q.plain(h1, QueueOp::Enqueue(2)), QueueResp::Ok);
        assert_eq!(q.plain(h0, QueueOp::Dequeue), QueueResp::Value(1));
        assert_eq!(q.plain(h0, QueueOp::Dequeue), QueueResp::Value(2));
        assert_eq!(q.plain(h0, QueueOp::Dequeue), QueueResp::Empty);
    }

    #[test]
    fn detectable_counter_round_trip() {
        let c = Universal::new(CounterSpec, 1, 16);
        let h0 = c.register_thread().unwrap();
        c.prep(h0, CounterOp::FetchAdd(5), 0);
        assert_eq!(c.exec(h0), CounterResp::Value(0));
        assert_eq!(c.resolve(h0), (Some((CounterOp::FetchAdd(5), 0)), Some(CounterResp::Value(0))));
        assert_eq!(c.state(), 5);
    }

    #[test]
    fn resolve_without_prep() {
        let c = Universal::new(CounterSpec, 2, 8);
        let _h0 = c.register_thread().unwrap();
        let h1 = c.register_thread().unwrap();
        assert_eq!(c.resolve(h1), (None, None));
    }

    #[test]
    fn crash_sweep_fetch_add() {
        // A fetch&add is the classic non-idempotent op: the sweep checks
        // exactly-once accounting across every crash point.
        for adv in [WritebackAdversary::None, WritebackAdversary::All] {
            for k in 1..60 {
                let c = Universal::new(CounterSpec, 1, 16);
                let h0 = c.register_thread().unwrap();
                c.pool().arm_crash_after(k);
                let r = catch_unwind(AssertUnwindSafe(|| {
                    c.prep(h0, CounterOp::FetchAdd(1), 7);
                    c.exec(h0);
                }));
                c.pool().disarm_crash();
                let crashed = match r {
                    Ok(_) => false,
                    Err(p) if p.downcast_ref::<dss_pmem::CrashSignal>().is_some() => true,
                    Err(p) => std::panic::resume_unwind(p),
                };
                if !crashed {
                    break;
                }
                c.pool().crash(&adv);
                c.rebuild_allocator();
                let count = c.state();
                match c.resolve(h0) {
                    (None, None) => assert_eq!(count, 0, "k={k} {adv:?}"),
                    (Some((CounterOp::FetchAdd(1), 7)), Some(CounterResp::Value(0))) => {
                        assert_eq!(count, 1, "k={k} {adv:?}")
                    }
                    (Some((CounterOp::FetchAdd(1), 7)), None) => {
                        assert_eq!(count, 0, "k={k} {adv:?}")
                    }
                    other => panic!("k={k} {adv:?}: impossible resolution {other:?}"),
                }
                // Exactly-once retry: if unresolved, re-exec; the count must
                // end at exactly 1 either way.
                if c.resolve(h0).1.is_none() {
                    c.prep(h0, CounterOp::FetchAdd(1), 8);
                    c.exec(h0);
                }
                assert_eq!(c.state(), 1, "k={k} {adv:?}: exactly-once violated");
            }
        }
    }

    #[test]
    fn concurrent_appends_agree_on_one_history() {
        let c = Arc::new(Universal::new(CounterSpec, 4, 512));
        let hs: Vec<_> = (0..4).map(|_| c.register_thread().unwrap()).collect();
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let c = Arc::clone(&c);
                let h = hs[tid];
                std::thread::spawn(move || {
                    for i in 0..100 {
                        c.prep(h, CounterOp::FetchAdd(1), i);
                        c.exec(h);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.state(), 400);
    }

    #[test]
    fn stack_resolve_after_crash_finds_linked_op() {
        let s = Universal::new(StackSpec, 1, 16);
        let h0 = s.register_thread().unwrap();
        s.prep(h0, StackOp::Push(9), 0);
        // Crash right after the link CAS + flush, before X gains COMPL:
        // append() ops: load hint, load last.next, CAS link, flush link —
        // crash on the hint CAS (5th op of exec; exec starts with load X).
        s.pool().arm_crash_after(6);
        let r = catch_unwind(AssertUnwindSafe(|| {
            s.exec(h0);
        }));
        s.pool().disarm_crash();
        assert!(r.is_err());
        s.pool().crash(&WritebackAdversary::None);
        s.rebuild_allocator();
        let (op, resp) = s.resolve(h0);
        assert_eq!(op, Some((StackOp::Push(9), 0)));
        assert_eq!(resp, Some(StackResp::Ok), "link persisted, so the push took effect");
        assert_eq!(s.state(), vec![9]);
    }

    #[test]
    fn codecs_round_trip() {
        for op in [QueueOp::Enqueue(u64::MAX), QueueOp::Dequeue] {
            assert_eq!(QueueSpec::decode(QueueSpec::encode(&op)), op);
        }
        for op in [RegisterOp::Read, RegisterOp::Write(7)] {
            assert_eq!(RegisterSpec::decode(RegisterSpec::encode(&op)), op);
        }
        for op in [CasOp::Read, CasOp::Cas { expected: 1, new: 2 }] {
            assert_eq!(CasSpec::decode(CasSpec::encode(&op)), op);
        }
        for op in [CounterOp::Read, CounterOp::FetchAdd(3)] {
            assert_eq!(CounterSpec::decode(CounterSpec::encode(&op)), op);
        }
        for op in [StackOp::Push(1), StackOp::Pop] {
            assert_eq!(StackSpec::decode(StackSpec::encode(&op)), op);
        }
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn capacity_limit_enforced() {
        let c = Universal::new(CounterSpec, 1, 2);
        let h0 = c.register_thread().unwrap();
        for _ in 0..3 {
            c.plain(h0, CounterOp::FetchAdd(1));
        }
    }
}
