//! A detectable recoverable hash map (`D⟨map⟩`) built on the extracted
//! [`DetectableCore`].
//!
//! The map is the "new object family" test of the core extraction: bucket
//! chains over the [`Memory`] backend, with the register/CAS value-node
//! indirection idiom applied per key. Two node kinds share one
//! [`NodePool`]:
//!
//! * **Entry nodes** `{key, vptr, next}` — one per *key*, prepended to a
//!   bucket chain when the key first appears and never reclaimed
//!   (immortal), so chain walks need no generation checks.
//! * **Value nodes** `{key, value, seq, flags}` — one per *write*
//!   (put or remove), immutable except for the `flags` word. An installer
//!   marks the incumbent's `SUPERSEDED` flag (persisted) before swinging
//!   the entry's `vptr`, so a writer can prove its write took effect —
//!   across crashes and later overwrites — exactly as the detectable
//!   register does. A remove installs a value node with the `TOMBSTONE`
//!   flag; the key's entry stays, the binding reads as absent.
//!
//! Buckets grow **crash-atomically** by whole levels: level `k` holds
//! `buckets0 · 2ᵏ` head words, level bases are derivable from the layout
//! and `k` alone, and [`grow`](DetectableMap::grow) first materializes the
//! new level's segments ([`Memory::reserve`]; fresh words read 0 = empty
//! chains) and then publishes the new level count with a single persisted
//! word store. A crash before the publish leaves the old table; after it,
//! the new level of empty chains — never a torn table.
//!
//! Like the register and CAS object, the map recovers *independently*
//! (§3.3): no recovery phase exists — [`resolve`](DetectableMap::resolve)
//! answers from persisted state alone.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use dss_pmem::{
    tag, AppKind, AttachError, Backoff, FlushGranularity, Memory, NodePool, PAddr, PmemPool,
    Registry, SlotError, ThreadHandle, WORDS_PER_LINE,
};
use dss_spec::types::{KvOp, KvResp};

use crate::detect::DetectableCore;

// Entry-node layout (4 words; nodes never straddle lines because the node
// region is NODE_WORDS-aligned and NODE_WORDS divides WORDS_PER_LINE).
const E_KEY: u64 = 0;
const E_VPTR: u64 = 1;
const E_NEXT: u64 = 2;

// Value-node layout (same pool, same width).
const V_KEY: u64 = 0;
const V_VALUE: u64 = 1;
const V_SEQ: u64 = 2;
const V_FLAGS: u64 = 3;
const NODE_WORDS: u64 = 4;

/// `flags` bit: a later write replaced this node as its key's binding.
const FLAG_SUPERSEDED: u64 = 1;
/// `flags` bit: this node is a remove — the binding reads as absent.
const FLAG_TOMBSTONE: u64 = 2;

// Map-local X tags (bit positions shared with the queue's enqueue tags;
// the objects never share an X word, so reuse is safe).
const M_PREP: u64 = tag::ENQ_PREP;
const M_COMPL: u64 = tag::ENQ_COMPL;

// Fixed layout head: [0:NULL][directory line][n X lines][level-0 buckets]
// [node region][registry][extension levels...].
const A_NLEVELS: u64 = WORDS_PER_LINE;
const A_X_BASE: u64 = 2 * WORDS_PER_LINE;

/// Hard cap on bucket levels: level `MAX_LEVELS - 1` already holds
/// `2^(MAX_LEVELS-1)` times the initial bucket count.
pub const MAX_LEVELS: u64 = 8;

/// Structure-kind word a file-backed map records in its pool superblock.
pub const KIND_DETECTABLE_MAP: u64 = AppKind::DetectableMap.word();

/// The map's pool layout, derived from `(nthreads, nodes_per_thread,
/// buckets0)` alone. Extension levels live past the registry so the
/// initial pool stays compact and growth exercises the segment machinery.
struct MapLayout {
    buckets_base: u64,
    region: u64,
    reg_base: u64,
    /// First word past the registry (line-aligned): base of level 1.
    ext_base: u64,
    /// Initial pool size — the layout through the registry.
    words: u64,
}

impl MapLayout {
    fn new(nthreads: usize, nodes_per_thread: u64, buckets0: u64) -> Self {
        assert!(nthreads > 0 && nodes_per_thread > 0);
        assert!(buckets0.is_power_of_two(), "bucket count must be a power of two");
        let x_end = A_X_BASE + nthreads as u64 * WORDS_PER_LINE;
        let buckets_base = x_end.next_multiple_of(WORDS_PER_LINE);
        let region = (buckets_base + buckets0).next_multiple_of(NODE_WORDS);
        // Two nodes per op slot: a put of a fresh key consumes an entry
        // node and a value node.
        let node_end = region + 2 * nodes_per_thread * nthreads as u64 * NODE_WORDS;
        let reg_base = node_end.next_multiple_of(WORDS_PER_LINE);
        let words = reg_base + Registry::<PmemPool>::region_words(nthreads);
        let ext_base = words.next_multiple_of(WORDS_PER_LINE);
        MapLayout { buckets_base, region, reg_base, ext_base, words }
    }
}

/// The outcome reported by [`DetectableMap::resolve`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResolvedMap {
    /// The prepared operation as `(key, op, seq)` — `op` is `Put(v)` or
    /// `Remove`, `seq` the application's §2.1 disambiguation tag — if one
    /// was ever prepared.
    pub op: Option<(u64, KvOp, u64)>,
    /// `Some(Ok)` if the operation took effect.
    pub resp: Option<KvResp>,
}

/// A detectable recoverable hash map (`D⟨map⟩`), keyed by `u64` with `u64`
/// values.
///
/// Detectable writes go through [`prep_put`](Self::prep_put) /
/// [`exec_put`](Self::exec_put) and [`prep_remove`](Self::prep_remove) /
/// [`exec_remove`](Self::exec_remove); plain [`put`](Self::put),
/// [`remove`](Self::remove), and [`get`](Self::get) are the
/// non-detectable operations (Axiom 4). After a crash no recovery phase is
/// needed: [`resolve`](Self::resolve) inspects persisted state only.
///
/// # Examples
///
/// ```
/// use dss_core::DetectableMap;
/// use dss_spec::types::{KvOp, KvResp};
///
/// let m = DetectableMap::new(2, 16, 8);
/// let h0 = m.register_thread().unwrap();
/// let h1 = m.register_thread().unwrap();
/// m.prep_put(h0, 7, 42, 0);
/// assert_eq!(m.exec_put(h0), KvResp::Ok);
/// assert_eq!(m.get(h1, 7), KvResp::Value(42));
/// let r = m.resolve(h0);
/// assert_eq!(r.op, Some((7, KvOp::Put(42), 0)));
/// assert_eq!(r.resp, Some(KvResp::Ok));
/// ```
pub struct DetectableMap<M: Memory = PmemPool> {
    /// The shared detectability skeleton: pool, registry, EBR, backoff,
    /// and the per-thread `X` words (see [`DetectableCore`]).
    core: DetectableCore<M>,
    nodes: NodePool,
    buckets_base: u64,
    ext_base: u64,
    buckets0: u64,
    /// Per-thread value nodes this thread created that are awaiting
    /// retirement. A node may be retired once it is neither its key's
    /// current binding nor referenced by the owner's `X` entry; only the
    /// owner ever retires its nodes, so `resolve` can always dereference
    /// `X` safely.
    pending: Box<[std::sync::Mutex<Vec<PAddr>>]>,
}

impl DetectableMap {
    /// Creates a map for `nthreads` threads with `nodes_per_thread`
    /// pre-allocated op slots each and `buckets0` level-0 buckets, on a
    /// fresh line-granular [`PmemPool`].
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero, or `buckets0`
    /// is not a power of two.
    pub fn new(nthreads: usize, nodes_per_thread: u64, buckets0: u64) -> Self {
        Self::new_in(nthreads, nodes_per_thread, buckets0, FlushGranularity::Line)
    }

    /// Creates a map on a **file-backed** pool at `path` (line-granular),
    /// recording [`KIND_DETECTABLE_MAP`] and the construction parameters
    /// in the superblock so [`attach`](Self::attach) needs only the path.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero, or `buckets0`
    /// is not a power of two.
    pub fn create<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
        buckets0: u64,
    ) -> Result<Self, AttachError> {
        Self::create_with(path, nthreads, nodes_per_thread, buckets0, FlushGranularity::Line)
    }

    /// [`create`](Self::create) with an explicit flush granularity (the
    /// E7 ablation knob; attach reads the granularity back from the
    /// superblock).
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero, or `buckets0`
    /// is not a power of two.
    pub fn create_with<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
        buckets0: u64,
        granularity: FlushGranularity,
    ) -> Result<Self, AttachError> {
        let layout = MapLayout::new(nthreads, nodes_per_thread, buckets0);
        let pool = Arc::new(PmemPool::create(path, layout.words as usize, granularity)?);
        pool.set_app_config(KIND_DETECTABLE_MAP, &[nthreads as u64, nodes_per_thread, buckets0]);
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let m = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread, buckets0);
        m.format();
        Ok(m)
    }

    /// Rebuilds a map from a pool file with no in-process state. The map
    /// recovers independently (no recovery phase): after
    /// [`begin_recovery`](Self::begin_recovery) +
    /// [`adopt_orphans`](Self::adopt_orphans), [`resolve`](Self::resolve)
    /// answers from persisted state alone.
    ///
    /// # Errors
    ///
    /// Any [`AttachError`], including [`AttachError::AppMismatch`] if the
    /// file holds a different structure.
    pub fn attach<P: AsRef<std::path::Path>>(path: P) -> Result<Self, AttachError> {
        let pool = Arc::new(PmemPool::attach(path)?);
        let found = pool.app_kind();
        if found != KIND_DETECTABLE_MAP {
            return Err(AttachError::AppMismatch { expected: KIND_DETECTABLE_MAP, found });
        }
        let [nthreads, nodes_per_thread, buckets0, ..] = pool.app_config();
        if nthreads == 0 || nodes_per_thread == 0 {
            return Err(AttachError::Corrupt("map parameter words are zero"));
        }
        if !buckets0.is_power_of_two() {
            return Err(AttachError::Corrupt("map bucket count is not a power of two"));
        }
        let nthreads = nthreads as usize;
        let layout = MapLayout::new(nthreads, nodes_per_thread, buckets0);
        if (pool.capacity() as u64) < layout.words {
            return Err(AttachError::Corrupt("pool smaller than the map layout requires"));
        }
        let nlevels = pool.peek(PAddr::from_index(A_NLEVELS));
        if nlevels == 0 || nlevels > MAX_LEVELS {
            return Err(AttachError::Corrupt("map level count out of range"));
        }
        let registry = Registry::attach(Arc::clone(&pool), layout.reg_base)?;
        let m = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread, buckets0);
        m.rebuild_allocator();
        Ok(m)
    }
}

impl<M: Memory> DetectableMap<M> {
    /// Creates a map on a freshly created backend of type `M`
    /// ([`Memory::create`]) — the backend-generic constructor behind
    /// [`new`](DetectableMap::new).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero, or `buckets0`
    /// is not a power of two.
    pub fn new_in(
        nthreads: usize,
        nodes_per_thread: u64,
        buckets0: u64,
        granularity: FlushGranularity,
    ) -> Self {
        let layout = MapLayout::new(nthreads, nodes_per_thread, buckets0);
        let pool = Arc::new(M::create(layout.words as usize, granularity));
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let m = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread, buckets0);
        m.format();
        m
    }

    /// The shared constructor tail: in-DRAM side tables over an existing
    /// pool + registry — everything `attach` must rebuild rather than map.
    fn assemble(
        pool: Arc<M>,
        registry: Registry<M>,
        layout: &MapLayout,
        nthreads: usize,
        nodes_per_thread: u64,
        buckets0: u64,
    ) -> Self {
        let nodes = NodePool::new(
            PAddr::from_index(layout.region),
            NODE_WORDS,
            2 * nodes_per_thread,
            nthreads,
        );
        DetectableMap {
            core: DetectableCore::new(pool, registry, nthreads, A_X_BASE, WORDS_PER_LINE),
            nodes,
            buckets_base: layout.buckets_base,
            ext_base: layout.ext_base,
            buckets0,
            pending: (0..nthreads).map(|_| std::sync::Mutex::new(Vec::new())).collect(),
        }
    }

    /// Writes and persists the initial map state (fresh pools only —
    /// never run on attach). Bucket heads rely on fresh words reading 0
    /// (= empty chain), the same invariant `grow` relies on.
    fn format(&self) {
        self.core.pool.store(PAddr::from_index(A_NLEVELS), 1);
        self.core.pool.flush(PAddr::from_index(A_NLEVELS));
        self.core.format_x();
        self.core.pool.drain();
    }

    /// Enables or disables bounded exponential backoff after failed
    /// install CAS. Default off.
    pub fn set_backoff(&self, on: bool) {
        self.core.set_backoff(on);
    }

    /// Whether contention management is enabled.
    pub fn backoff_enabled(&self) -> bool {
        self.core.backoff_enabled()
    }

    fn new_backoff(&self) -> Backoff<'_> {
        self.core.new_backoff()
    }

    // Handle validity is the core's concern; see DetectableCore::x_addr.
    fn x_addr(&self, slot: usize) -> PAddr {
        self.core.x_addr(slot)
    }

    /// The map's persistent-memory pool.
    pub fn pool(&self) -> &Arc<M> {
        self.core.pool()
    }

    /// Number of threads the map was built for.
    pub fn nthreads(&self) -> usize {
        self.core.nthreads()
    }

    /// The map's persistent thread-slot registry.
    pub fn registry(&self) -> &Registry<M> {
        self.core.registry()
    }

    /// Claims a free registry slot; see
    /// [`DssQueue::register_thread`](crate::DssQueue::register_thread).
    ///
    /// # Errors
    ///
    /// [`SlotError::Exhausted`] when all slots are taken.
    pub fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
        self.core.register_thread()
    }

    /// Returns a handle's slot to the registry.
    ///
    /// # Errors
    ///
    /// [`SlotError::StaleHandle`] / [`SlotError::ForeignHandle`] per
    /// [`Registry::release`].
    pub fn release_thread(&self, h: ThreadHandle) -> Result<(), SlotError> {
        self.core.release_thread(h)
    }

    /// Marks the crash boundary in the registry (idempotent per crash).
    /// The map needs no recovery phase — [`resolve`](Self::resolve) reads
    /// persisted state only — so this exists purely to make dead threads'
    /// slots adoptable.
    pub fn begin_recovery(&self) {
        self.core.begin_recovery();
    }

    /// Adopts one orphaned slot (fresh lease, EBR state inherited).
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] / [`SlotError::NotOrphaned`] per
    /// [`Registry::adopt`].
    pub fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
        self.core.adopt(slot)
    }

    /// [`adopt`](Self::adopt) over every orphaned slot, ascending.
    pub fn adopt_orphans(&self) -> Vec<ThreadHandle> {
        self.core.adopt_orphans()
    }

    // --- bucket-level geometry ------------------------------------------

    /// The number of published bucket levels (persisted).
    pub fn nlevels(&self) -> u64 {
        self.core.pool.peek(PAddr::from_index(A_NLEVELS))
    }

    fn level_buckets(&self, k: u64) -> u64 {
        self.buckets0 << k
    }

    /// Level bases are derivable from the layout and `k` alone — the
    /// growth invariant that lets `attach` find every level without a
    /// persisted directory beyond the level count.
    fn level_base(&self, k: u64) -> u64 {
        if k == 0 {
            self.buckets_base
        } else {
            // Levels 1..k-1 occupy buckets0·(2¹+…+2^(k-1)) words.
            self.ext_base + self.buckets0 * ((1 << k) - 2)
        }
    }

    /// First word past level `n - 1`: the reserve target for `n` levels.
    fn levels_end(&self, n: u64) -> u64 {
        self.level_base(n - 1) + self.level_buckets(n - 1)
    }

    fn bucket_addr(&self, k: u64, key: u64) -> PAddr {
        let mut h = key ^ (key >> 33);
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        PAddr::from_index(self.level_base(k) + (h & (self.level_buckets(k) - 1)))
    }

    /// Adds one bucket level, crash-atomically: materializes the new
    /// level's segments first ([`Memory::reserve`]; fresh words read 0 =
    /// empty chains), then publishes the new level count with a single
    /// persisted word store. An administrative, quiescent operation — run
    /// it while no other thread operates on the map. Returns the new
    /// level count.
    ///
    /// # Panics
    ///
    /// Panics at [`MAX_LEVELS`].
    pub fn grow(&self) -> u64 {
        let n = self.nlevels();
        assert!(n < MAX_LEVELS, "map already at MAX_LEVELS ({MAX_LEVELS}) bucket levels");
        let new = n + 1;
        // Segments first: a crash between reserve and publish leaves the
        // old table (the count still reads n).
        self.core.pool.reserve(self.levels_end(new) as usize);
        self.core.pool.store(PAddr::from_index(A_NLEVELS), new);
        self.core.pool.flush(PAddr::from_index(A_NLEVELS));
        self.core.pool.drain_line(PAddr::from_index(A_NLEVELS));
        new
    }

    // --- chain walks ----------------------------------------------------

    /// The entry node bound to `key`, if the key ever appeared. Entries
    /// are unique per key across levels: an insert checks every level
    /// before creating one, and creation races re-walk on CAS failure.
    fn find_entry(&self, key: u64) -> Option<PAddr> {
        let n = self.nlevels();
        for k in 0..n {
            let mut e = tag::addr_of(self.core.pool.load(self.bucket_addr(k, key)));
            while !e.is_null() {
                if self.core.pool.load(e.offset(E_KEY)) == key {
                    return Some(e);
                }
                e = tag::addr_of(self.core.pool.load(e.offset(E_NEXT)));
            }
        }
        None
    }

    /// Uninstrumented twin of [`find_entry`](Self::find_entry) for sweeps
    /// and snapshots, so they don't perturb counted experiments.
    fn find_entry_peek(&self, key: u64) -> Option<PAddr> {
        let n = self.nlevels();
        for k in 0..n {
            let mut e = tag::addr_of(self.core.pool.peek(self.bucket_addr(k, key)));
            while !e.is_null() {
                if self.core.pool.peek(e.offset(E_KEY)) == key {
                    return Some(e);
                }
                e = tag::addr_of(self.core.pool.peek(e.offset(E_NEXT)));
            }
        }
        None
    }

    // --- allocation and reclamation -------------------------------------

    fn alloc(&self, tid: usize) -> PAddr {
        self.nodes
            .alloc_with_reclaim(tid, &self.core.ebr)
            .unwrap_or_else(|| panic!("map node pool exhausted (size it for the workload)"))
    }

    /// Retires the caller's past value nodes that are no longer their
    /// key's current binding (nor the caller's `X` node); called from the
    /// prep/plain paths so retirement needs no extra API.
    fn sweep_pending(&self, tid: usize) {
        let mut pending = self.pending[tid].lock().unwrap_or_else(|e| e.into_inner());
        let x = tag::addr_of(self.core.pool.peek(self.x_addr(tid)));
        pending.retain(|&p| {
            if p == x {
                return true;
            }
            let key = self.core.pool.peek(p.offset(V_KEY));
            let current = self
                .find_entry_peek(key)
                .is_some_and(|en| self.core.pool.peek(en.offset(E_VPTR)) == p.to_word());
            if current {
                true
            } else {
                self.core.ebr.retire(tid, p);
                false
            }
        });
    }

    fn push_pending(&self, tid: usize, node: PAddr) {
        self.pending[tid].lock().unwrap_or_else(|e| e.into_inner()).push(node);
    }

    /// Allocates and persists a value node; the announce (or plain
    /// install) must not persist ahead of it.
    fn init_value_node(&self, tid: usize, key: u64, value: u64, seq: u64, flags: u64) -> PAddr {
        let node = self.alloc(tid);
        self.core.pool.store(node.offset(V_KEY), key);
        self.core.pool.store(node.offset(V_VALUE), value);
        self.core.pool.store(node.offset(V_SEQ), seq);
        self.core.pool.store(node.offset(V_FLAGS), flags);
        // Every field word, not just the node base: under word-granular
        // flushing the fields are separate flush units.
        self.core.pool.persist_batch(&[
            node.offset(V_KEY),
            node.offset(V_VALUE),
            node.offset(V_SEQ),
            node.offset(V_FLAGS),
        ]);
        node
    }

    // --- detectable operations ------------------------------------------

    /// **prep-put(key, val, seq)**: allocates and persists a value node,
    /// then announces it in `X[tid]`. `seq` is the application's §2.1
    /// disambiguation tag.
    ///
    /// # Panics
    ///
    /// Panics if the node pool is exhausted.
    pub fn prep_put(&self, h: ThreadHandle, key: u64, val: u64, seq: u64) {
        self.prep_write(h, key, val, seq, 0);
    }

    /// **prep-remove(key, seq)**: like a put, announcing a `TOMBSTONE`
    /// value node — the binding that reads as absent.
    ///
    /// # Panics
    ///
    /// Panics if the node pool is exhausted.
    pub fn prep_remove(&self, h: ThreadHandle, key: u64, seq: u64) {
        self.prep_write(h, key, 0, seq, FLAG_TOMBSTONE);
    }

    fn prep_write(&self, h: ThreadHandle, key: u64, val: u64, seq: u64, flags: u64) {
        let tid = h.slot();
        self.sweep_pending(tid);
        let old = tag::addr_of(self.core.pool.load(self.x_addr(tid)));
        let node = self.init_value_node(tid, key, val, pack(tid, seq), flags);
        // Announce + the durable-before-return drain (DetectableCore).
        self.core.announce(tid, tag::set(node.to_word(), M_PREP));
        // The previous announcement node is no longer referenced by
        // X[tid]; it becomes retirable once it also stops being its key's
        // current binding.
        if !old.is_null() {
            self.push_pending(tid, old);
        }
    }

    /// **exec-put()**: installs the prepared value node as its key's
    /// binding — into the key's existing entry (marking the incumbent
    /// superseded, persisted, first) or via a fresh entry prepended to a
    /// bucket chain.
    ///
    /// # Panics
    ///
    /// Panics if no put is prepared for `tid` (or it already executed —
    /// Axiom 2's precondition `R[pᵢ] = ⊥`).
    pub fn exec_put(&self, h: ThreadHandle) -> KvResp {
        let tid = h.slot();
        let _g = self.core.pin(tid);
        let xa = self.x_addr(tid);
        let x = self.core.pool.load(xa);
        assert!(
            tag::has(x, M_PREP) && !tag::has(x, M_COMPL),
            "exec-put without a pending prepared operation (X[{tid}] = {x:#x})"
        );
        let vn = tag::addr_of(x);
        assert!(
            self.core.pool.load(vn.offset(V_FLAGS)) & FLAG_TOMBSTONE == 0,
            "exec-put after prep-remove (use exec_remove)"
        );
        self.install(tid, x, vn, true);
        KvResp::Ok
    }

    /// **exec-remove()**: installs the prepared tombstone into the key's
    /// entry; a remove of an absent key takes effect trivially (the map is
    /// total) and is marked complete without touching any chain.
    ///
    /// # Panics
    ///
    /// Panics if no remove is prepared for `tid` (or it already executed).
    pub fn exec_remove(&self, h: ThreadHandle) -> KvResp {
        let tid = h.slot();
        let _g = self.core.pin(tid);
        let xa = self.x_addr(tid);
        let x = self.core.pool.load(xa);
        assert!(
            tag::has(x, M_PREP) && !tag::has(x, M_COMPL),
            "exec-remove without a pending prepared operation (X[{tid}] = {x:#x})"
        );
        let vn = tag::addr_of(x);
        assert!(
            self.core.pool.load(vn.offset(V_FLAGS)) & FLAG_TOMBSTONE != 0,
            "exec-remove after prep-put (use exec_put)"
        );
        self.install(tid, x, vn, false);
        KvResp::Ok
    }

    /// The shared install machine: binds the announced value node `vn` to
    /// its key. `create_entry` distinguishes put (a fresh key gains an
    /// entry) from remove (an absent key needs no chain surgery — the
    /// remove takes effect trivially).
    fn install(&self, tid: usize, x: u64, vn: PAddr, create_entry: bool) {
        let xa = self.x_addr(tid);
        let key = self.core.pool.load(vn.offset(V_KEY));
        let mut bo = self.new_backoff();
        loop {
            match self.find_entry(key) {
                Some(en) => {
                    let eva = en.offset(E_VPTR);
                    let old_w = self.core.pool.load(eva);
                    let old = tag::addr_of(old_w);
                    // Mark the incumbent superseded *before* replacing it:
                    // its owner must be able to prove installation even
                    // after we win. (Preserve its TOMBSTONE bit.)
                    let fl = self.core.pool.load(old.offset(V_FLAGS));
                    self.core.pool.store(old.offset(V_FLAGS), fl | FLAG_SUPERSEDED);
                    self.core.pool.flush(old.offset(V_FLAGS));
                    // The announce and the incumbent's superseded mark
                    // must be persistent before the install can take
                    // effect — resolve proves installation through either.
                    self.core.pool.drain_lines(&[old.offset(V_FLAGS), xa]);
                    if self.core.pool.cas(eva, old_w, vn.to_word()).is_ok() {
                        self.core.pool.flush(eva);
                        // Ordering point: the completion mark must not
                        // persist ahead of the install it certifies.
                        self.core.pool.drain_line(eva);
                        self.core.complete(tid, tag::set(x, M_COMPL));
                        self.core.pool.drain();
                        return;
                    }
                }
                None if !create_entry => {
                    // Removing an absent key: effect is trivial, nothing
                    // to persist but the completion mark.
                    self.core.complete(tid, tag::set(x, M_COMPL));
                    self.core.pool.drain();
                    return;
                }
                None => {
                    // First write to this key: prepend an entry (seeded
                    // with vn) to the newest level's bucket chain. The
                    // entry must be fully persistent before its link can
                    // take effect — a chain must never pass through an
                    // unwritten node.
                    let level = self.nlevels() - 1;
                    let ba = self.bucket_addr(level, key);
                    let en = self.alloc(tid);
                    self.core.pool.store(en.offset(E_KEY), key);
                    self.core.pool.store(en.offset(E_VPTR), vn.to_word());
                    let head_w = self.core.pool.load(ba);
                    self.core.pool.store(en.offset(E_NEXT), head_w);
                    // Every field word (they are separate units under
                    // word-granular flushing); the entry and the announce
                    // must be persistent before the prepend can take
                    // effect.
                    self.core.pool.flush(en.offset(E_KEY));
                    self.core.pool.flush(en.offset(E_VPTR));
                    self.core.pool.flush(en.offset(E_NEXT));
                    self.core.pool.drain_lines(&[
                        en.offset(E_KEY),
                        en.offset(E_VPTR),
                        en.offset(E_NEXT),
                        xa,
                    ]);
                    if self.core.pool.cas(ba, head_w, en.to_word()).is_ok() {
                        self.core.pool.flush(ba);
                        // Ordering point: completion behind the prepend.
                        self.core.pool.drain_line(ba);
                        self.core.complete(tid, tag::set(x, M_COMPL));
                        self.core.pool.drain();
                        return;
                    }
                    // Lost the prepend race (possibly to this very key's
                    // first writer): the entry was never exposed, so free
                    // it directly and re-walk.
                    self.nodes.free(tid, en);
                }
            }
            bo.spin();
        }
    }

    // --- plain operations (Axiom 4) -------------------------------------

    /// Non-detectable **put(key, val)**: the same install machine with
    /// every access to `X` omitted.
    ///
    /// # Panics
    ///
    /// Panics if the node pool is exhausted.
    pub fn put(&self, h: ThreadHandle, key: u64, val: u64) -> KvResp {
        self.plain_write(h, key, val, 0)
    }

    /// Non-detectable **remove(key)** (Axiom 4).
    ///
    /// # Panics
    ///
    /// Panics if the node pool is exhausted.
    pub fn remove(&self, h: ThreadHandle, key: u64) -> KvResp {
        self.plain_write(h, key, 0, FLAG_TOMBSTONE)
    }

    fn plain_write(&self, h: ThreadHandle, key: u64, val: u64, flags: u64) -> KvResp {
        let tid = h.slot();
        let _g = self.core.pin(tid);
        self.sweep_pending(tid);
        let vn = self.init_value_node(tid, key, val, u64::MAX, flags);
        let mut bo = self.new_backoff();
        loop {
            match self.find_entry(key) {
                Some(en) => {
                    let eva = en.offset(E_VPTR);
                    let old_w = self.core.pool.load(eva);
                    let old = tag::addr_of(old_w);
                    let fl = self.core.pool.load(old.offset(V_FLAGS));
                    self.core.pool.store(old.offset(V_FLAGS), fl | FLAG_SUPERSEDED);
                    self.core.pool.flush(old.offset(V_FLAGS));
                    self.core.pool.drain_line(old.offset(V_FLAGS));
                    if self.core.pool.cas(eva, old_w, vn.to_word()).is_ok() {
                        self.core.pool.flush(eva);
                        self.core.pool.drain();
                        // X never references a plain write's node, so it
                        // joins the owner's pending list right away.
                        self.push_pending(tid, vn);
                        return KvResp::Ok;
                    }
                }
                None if flags & FLAG_TOMBSTONE != 0 => {
                    // Removing an absent key: trivial effect; the node was
                    // never exposed.
                    self.nodes.free(tid, vn);
                    return KvResp::Ok;
                }
                None => {
                    let level = self.nlevels() - 1;
                    let ba = self.bucket_addr(level, key);
                    let en = self.alloc(tid);
                    self.core.pool.store(en.offset(E_KEY), key);
                    self.core.pool.store(en.offset(E_VPTR), vn.to_word());
                    let head_w = self.core.pool.load(ba);
                    self.core.pool.store(en.offset(E_NEXT), head_w);
                    self.core.pool.persist_batch(&[
                        en.offset(E_KEY),
                        en.offset(E_VPTR),
                        en.offset(E_NEXT),
                    ]);
                    if self.core.pool.cas(ba, head_w, en.to_word()).is_ok() {
                        self.core.pool.flush(ba);
                        self.core.pool.drain();
                        self.push_pending(tid, vn);
                        return KvResp::Ok;
                    }
                    self.nodes.free(tid, en);
                }
            }
            bo.spin();
        }
    }

    /// **get(key)** (plain): the key's current value, or `Absent`.
    pub fn get(&self, h: ThreadHandle, key: u64) -> KvResp {
        let _g = self.core.pin(h.slot());
        match self.find_entry(key) {
            None => KvResp::Absent,
            Some(en) => {
                let vn = tag::addr_of(self.core.pool.load(en.offset(E_VPTR)));
                if self.core.pool.load(vn.offset(V_FLAGS)) & FLAG_TOMBSTONE != 0 {
                    KvResp::Absent
                } else {
                    KvResp::Value(self.core.pool.load(vn.offset(V_VALUE)))
                }
            }
        }
    }

    /// **resolve()**: reports the most recently prepared operation and
    /// whether it took effect. Needs no prior recovery phase; callable
    /// any time, idempotent.
    ///
    /// The effect proof mirrors the register's: the completion mark, the
    /// node's persisted `SUPERSEDED` flag, or the node being its key's
    /// current binding each individually prove installation. A remove of
    /// an absent key leaves only the completion mark — a crash before it
    /// reports the remove unresolved, and re-executing is idempotent.
    pub fn resolve(&self, h: ThreadHandle) -> ResolvedMap {
        let x = self.core.pool.load(self.x_addr(h.slot()));
        if !tag::has(x, M_PREP) {
            return ResolvedMap { op: None, resp: None };
        }
        let vn = tag::addr_of(x);
        let key = self.core.pool.load(vn.offset(V_KEY));
        let seq = self.core.pool.load(vn.offset(V_SEQ)) & tag::ADDR_MASK;
        let flags = self.core.pool.load(vn.offset(V_FLAGS));
        let op = if flags & FLAG_TOMBSTONE != 0 {
            KvOp::Remove
        } else {
            KvOp::Put(self.core.pool.load(vn.offset(V_VALUE)))
        };
        let effective = tag::has(x, M_COMPL)
            || flags & FLAG_SUPERSEDED != 0
            || self
                .find_entry(key)
                .is_some_and(|en| self.core.pool.load(en.offset(E_VPTR)) == vn.to_word());
        ResolvedMap {
            op: Some((key, op, seq)),
            resp: if effective { Some(KvResp::Ok) } else { None },
        }
    }

    // --- post-crash repair ----------------------------------------------

    /// Rebuilds the volatile allocator after a crash: every reachable
    /// entry node, every entry's current value node, and every
    /// `X`-referenced node stay allocated.
    pub fn rebuild_allocator(&self) {
        let mut live: Vec<PAddr> = Vec::new();
        let n = self.nlevels();
        for k in 0..n {
            for b in 0..self.level_buckets(k) {
                let head = PAddr::from_index(self.level_base(k) + b);
                let mut e = tag::addr_of(self.core.pool.peek(head));
                while !e.is_null() {
                    live.push(e);
                    let v = tag::addr_of(self.core.pool.peek(e.offset(E_VPTR)));
                    if !v.is_null() {
                        live.push(v);
                    }
                    e = tag::addr_of(self.core.pool.peek(e.offset(E_NEXT)));
                }
            }
        }
        for i in 0..self.core.nthreads {
            let d = tag::addr_of(self.core.pool.peek(self.x_addr(i)));
            if !d.is_null() {
                live.push(d);
            }
        }
        self.nodes.rebuild(live);
        self.core.ebr.reset();
        for p in self.pending.iter() {
            p.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// The map's current contents (uninstrumented), for conservation
    /// checks and debugging.
    pub fn snapshot(&self) -> BTreeMap<u64, u64> {
        let mut out = BTreeMap::new();
        let n = self.nlevels();
        for k in 0..n {
            for b in 0..self.level_buckets(k) {
                let head = PAddr::from_index(self.level_base(k) + b);
                let mut e = tag::addr_of(self.core.pool.peek(head));
                while !e.is_null() {
                    let vn = tag::addr_of(self.core.pool.peek(e.offset(E_VPTR)));
                    if !vn.is_null()
                        && self.core.pool.peek(vn.offset(V_FLAGS)) & FLAG_TOMBSTONE == 0
                    {
                        out.insert(
                            self.core.pool.peek(e.offset(E_KEY)),
                            self.core.pool.peek(vn.offset(V_VALUE)),
                        );
                    }
                    e = tag::addr_of(self.core.pool.peek(e.offset(E_NEXT)));
                }
            }
        }
        out
    }
}

fn pack(pid: usize, seq: u64) -> u64 {
    ((pid as u64) << 48) | (seq & tag::ADDR_MASK)
}

impl<M: Memory> fmt::Debug for DetectableMap<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetectableMap")
            .field("nthreads", &self.core.nthreads)
            .field("buckets0", &self.buckets0)
            .field("nlevels", &self.nlevels())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_pmem::WritebackAdversary;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    fn run_crash_at<F: FnOnce()>(m: &DetectableMap, k: u64, f: F) -> bool {
        m.pool().arm_crash_after(k);
        let res = catch_unwind(AssertUnwindSafe(f));
        m.pool().disarm_crash();
        match res {
            Ok(()) => false,
            Err(p) if p.downcast_ref::<dss_pmem::CrashSignal>().is_some() => true,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    #[test]
    fn put_get_remove_basic() {
        let m = DetectableMap::new(2, 16, 8);
        let h0 = m.register_thread().unwrap();
        let h1 = m.register_thread().unwrap();
        assert_eq!(m.get(h0, 1), KvResp::Absent);
        assert_eq!(m.put(h0, 1, 10), KvResp::Ok);
        assert_eq!(m.get(h1, 1), KvResp::Value(10));
        assert_eq!(m.put(h1, 1, 11), KvResp::Ok);
        assert_eq!(m.get(h0, 1), KvResp::Value(11));
        assert_eq!(m.remove(h0, 1), KvResp::Ok);
        assert_eq!(m.get(h1, 1), KvResp::Absent);
        assert_eq!(m.remove(h1, 2), KvResp::Ok, "removing an absent key is legal");
    }

    #[test]
    fn many_keys_collide_and_chain() {
        // 4 buckets, 64 keys: every chain holds many keys.
        let m = DetectableMap::new(1, 128, 4);
        let h = m.register_thread().unwrap();
        for k in 0..64 {
            assert_eq!(m.put(h, k, k * 100), KvResp::Ok);
        }
        for k in 0..64 {
            assert_eq!(m.get(h, k), KvResp::Value(k * 100), "key {k}");
        }
        assert_eq!(m.snapshot().len(), 64);
    }

    #[test]
    fn detectable_put_resolves_ok() {
        let m = DetectableMap::new(1, 8, 8);
        let h = m.register_thread().unwrap();
        m.prep_put(h, 3, 30, 0);
        assert_eq!(m.resolve(h), ResolvedMap { op: Some((3, KvOp::Put(30), 0)), resp: None });
        assert_eq!(m.exec_put(h), KvResp::Ok);
        assert_eq!(
            m.resolve(h),
            ResolvedMap { op: Some((3, KvOp::Put(30), 0)), resp: Some(KvResp::Ok) }
        );
        assert_eq!(m.get(h, 3), KvResp::Value(30));
    }

    #[test]
    fn detectable_remove_resolves_ok() {
        let m = DetectableMap::new(1, 8, 8);
        let h = m.register_thread().unwrap();
        m.put(h, 5, 50);
        m.prep_remove(h, 5, 1);
        assert_eq!(m.resolve(h), ResolvedMap { op: Some((5, KvOp::Remove, 1)), resp: None });
        assert_eq!(m.exec_remove(h), KvResp::Ok);
        assert_eq!(
            m.resolve(h),
            ResolvedMap { op: Some((5, KvOp::Remove, 1)), resp: Some(KvResp::Ok) }
        );
        assert_eq!(m.get(h, 5), KvResp::Absent);
    }

    #[test]
    fn remove_absent_resolves_ok() {
        let m = DetectableMap::new(1, 8, 8);
        let h = m.register_thread().unwrap();
        m.prep_remove(h, 99, 7);
        assert_eq!(m.exec_remove(h), KvResp::Ok);
        assert_eq!(
            m.resolve(h),
            ResolvedMap { op: Some((99, KvOp::Remove, 7)), resp: Some(KvResp::Ok) }
        );
    }

    #[test]
    fn overwritten_put_still_resolves_ok() {
        // The superseded flag preserves provenance after an overwrite.
        let m = DetectableMap::new(2, 8, 8);
        let h0 = m.register_thread().unwrap();
        let h1 = m.register_thread().unwrap();
        m.prep_put(h0, 4, 40, 0);
        m.exec_put(h0);
        m.put(h1, 4, 41); // overwrites
        assert_eq!(m.get(h0, 4), KvResp::Value(41));
        assert_eq!(
            m.resolve(h0),
            ResolvedMap { op: Some((4, KvOp::Put(40), 0)), resp: Some(KvResp::Ok) }
        );
    }

    #[test]
    fn seq_tag_disambiguates_identical_puts() {
        let m = DetectableMap::new(1, 8, 8);
        let h = m.register_thread().unwrap();
        m.prep_put(h, 1, 5, 0);
        m.exec_put(h);
        m.prep_put(h, 1, 5, 1); // same key and value, new op
        assert_eq!(m.resolve(h), ResolvedMap { op: Some((1, KvOp::Put(5), 1)), resp: None });
    }

    #[test]
    #[should_panic(expected = "without a pending prepared")]
    fn double_exec_panics() {
        let m = DetectableMap::new(1, 8, 8);
        let h = m.register_thread().unwrap();
        m.prep_put(h, 1, 1, 0);
        m.exec_put(h);
        m.exec_put(h); // Axiom 2: R[pᵢ] ≠ ⊥
    }

    #[test]
    fn crash_sweep_put_fresh_key() {
        // prep-put(1, 10); exec-put() on an empty map, crashing at every
        // pmem-op index under three writeback adversaries: resolve must
        // agree with what a get observes.
        for adv in [
            WritebackAdversary::None,
            WritebackAdversary::All,
            WritebackAdversary::Random { seed: 5, prob: 0.5 },
        ] {
            for k in 1..80 {
                let m = DetectableMap::new(1, 8, 8);
                let h = m.register_thread().unwrap();
                let crashed = run_crash_at(&m, k, || {
                    m.prep_put(h, 1, 10, 9);
                    m.exec_put(h);
                });
                if !crashed {
                    break;
                }
                m.pool().crash(&adv);
                m.rebuild_allocator();
                let now = m.get(h, 1);
                match m.resolve(h) {
                    ResolvedMap { op: None, resp: None } => {
                        assert_eq!(now, KvResp::Absent, "k={k} {adv:?}")
                    }
                    ResolvedMap { op: Some((1, KvOp::Put(10), 9)), resp: Some(KvResp::Ok) } => {
                        assert_eq!(now, KvResp::Value(10), "k={k} {adv:?}: effect persisted")
                    }
                    ResolvedMap { op: Some((1, KvOp::Put(10), 9)), resp: None } => {
                        assert_eq!(now, KvResp::Absent, "k={k} {adv:?}: no effect")
                    }
                    other => panic!("k={k} {adv:?}: impossible resolution {other:?}"),
                }
            }
        }
    }

    #[test]
    fn crash_sweep_update_existing_key() {
        for adv in [WritebackAdversary::None, WritebackAdversary::All] {
            for k in 1..80 {
                let m = DetectableMap::new(1, 8, 8);
                let h = m.register_thread().unwrap();
                m.put(h, 2, 20);
                let crashed = run_crash_at(&m, k, || {
                    m.prep_put(h, 2, 21, 3);
                    m.exec_put(h);
                });
                if !crashed {
                    break;
                }
                m.pool().crash(&adv);
                m.rebuild_allocator();
                let now = m.get(h, 2);
                match m.resolve(h) {
                    ResolvedMap { op: None, resp: None } => {
                        assert_eq!(now, KvResp::Value(20), "k={k} {adv:?}")
                    }
                    ResolvedMap { op: Some((2, KvOp::Put(21), 3)), resp: Some(KvResp::Ok) } => {
                        assert_eq!(now, KvResp::Value(21), "k={k} {adv:?}")
                    }
                    ResolvedMap { op: Some((2, KvOp::Put(21), 3)), resp: None } => {
                        assert_eq!(now, KvResp::Value(20), "k={k} {adv:?}")
                    }
                    other => panic!("k={k} {adv:?}: impossible resolution {other:?}"),
                }
            }
        }
    }

    #[test]
    fn crash_sweep_remove() {
        for adv in [WritebackAdversary::None, WritebackAdversary::All] {
            for k in 1..80 {
                let m = DetectableMap::new(1, 8, 8);
                let h = m.register_thread().unwrap();
                m.put(h, 6, 60);
                let crashed = run_crash_at(&m, k, || {
                    m.prep_remove(h, 6, 4);
                    m.exec_remove(h);
                });
                if !crashed {
                    break;
                }
                m.pool().crash(&adv);
                m.rebuild_allocator();
                let now = m.get(h, 6);
                match m.resolve(h) {
                    ResolvedMap { op: None, resp: None } => {
                        assert_eq!(now, KvResp::Value(60), "k={k} {adv:?}")
                    }
                    ResolvedMap { op: Some((6, KvOp::Remove, 4)), resp: Some(KvResp::Ok) } => {
                        assert_eq!(now, KvResp::Absent, "k={k} {adv:?}")
                    }
                    ResolvedMap { op: Some((6, KvOp::Remove, 4)), resp: None } => {
                        assert_eq!(now, KvResp::Value(60), "k={k} {adv:?}")
                    }
                    other => panic!("k={k} {adv:?}: impossible resolution {other:?}"),
                }
            }
        }
    }

    #[test]
    fn grow_preserves_contents_and_spreads_new_keys() {
        let m = DetectableMap::new(1, 256, 4);
        let h = m.register_thread().unwrap();
        for k in 0..32 {
            m.put(h, k, k + 1000);
        }
        assert_eq!(m.nlevels(), 1);
        assert_eq!(m.grow(), 2);
        assert_eq!(m.grow(), 3);
        // Old keys still found (their entries live in level 0)...
        for k in 0..32 {
            assert_eq!(m.get(h, k), KvResp::Value(k + 1000), "old key {k}");
        }
        // ...new keys land in the newest level and updates find them.
        for k in 100..140 {
            m.put(h, k, k);
            assert_eq!(m.get(h, k), KvResp::Value(k));
        }
        m.put(h, 5, 7777); // update an old-level key after growth
        assert_eq!(m.get(h, 5), KvResp::Value(7777));
        assert_eq!(m.snapshot().len(), 32 + 40);
    }

    #[test]
    fn grow_is_crash_atomic() {
        // Crash at every pmem-op index inside grow(): afterwards the map
        // reads either the old or the new level count, never a torn
        // table, and the contents are intact either way.
        for k in 1..12 {
            let m = DetectableMap::new(1, 64, 4);
            let h = m.register_thread().unwrap();
            for key in 0..16 {
                m.put(h, key, key * 2);
            }
            let crashed = run_crash_at(&m, k, || {
                m.grow();
            });
            m.pool().crash(&WritebackAdversary::All);
            m.rebuild_allocator();
            let n = m.nlevels();
            assert!(n == 1 || n == 2, "k={k}: torn level count {n}");
            for key in 0..16 {
                assert_eq!(m.get(h, key), KvResp::Value(key * 2), "k={k} key={key}");
            }
            if !crashed {
                break;
            }
        }
    }

    #[test]
    fn concurrent_disjoint_writers_conserve_all_bindings() {
        let m = Arc::new(DetectableMap::new(4, 256, 8));
        let hs: Vec<_> = (0..4).map(|_| m.register_thread().unwrap()).collect();
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let m = Arc::clone(&m);
                let h = hs[tid];
                std::thread::spawn(move || {
                    let base = (tid as u64) << 32;
                    for i in 0..100 {
                        m.prep_put(h, base | (i % 10), i, i);
                        m.exec_put(h);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = m.snapshot();
        for tid in 0..4u64 {
            for key in 0..10u64 {
                let expect = 90 + key; // last write of i ≡ key (mod 10)
                assert_eq!(snap.get(&((tid << 32) | key)), Some(&expect), "t{tid} k{key}");
            }
        }
        for &h in &hs {
            assert_eq!(m.resolve(h).resp, Some(KvResp::Ok));
        }
    }

    #[test]
    fn concurrent_same_key_last_value_is_someones() {
        let m = Arc::new(DetectableMap::new(4, 512, 8));
        let hs: Vec<_> = (0..4).map(|_| m.register_thread().unwrap()).collect();
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let m = Arc::clone(&m);
                let h = hs[tid];
                std::thread::spawn(move || {
                    for i in 0..200 {
                        m.prep_put(h, 42, ((tid as u64) << 16) | i, i);
                        m.exec_put(h);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let v = match m.get(hs[0], 42) {
            KvResp::Value(v) => v,
            other => panic!("key must be bound, got {other:?}"),
        };
        assert!(v >> 16 < 4 && (v & 0xffff) == 199, "final value {v:#x} is someone's last write");
        for &h in &hs {
            assert_eq!(m.resolve(h).resp, Some(KvResp::Ok));
        }
    }

    #[test]
    fn file_backed_create_attach_round_trip() {
        let path = std::env::temp_dir()
            .join(format!("dss-map-test-{}-roundtrip.pool", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let m = DetectableMap::create(&path, 2, 32, 8).unwrap();
            let h = m.register_thread().unwrap();
            for k in 0..10 {
                m.put(h, k, k + 1);
            }
            m.grow();
            m.put(h, 100, 101);
            m.prep_put(h, 7, 7777, 3);
            // prep announced but never executed; the new process resolves it.
        }
        {
            let m = DetectableMap::attach(&path).unwrap();
            m.begin_recovery();
            let adopted = m.adopt_orphans();
            assert_eq!(adopted.len(), 1);
            let h = adopted[0];
            assert_eq!(m.nlevels(), 2);
            for k in 0..10 {
                assert_eq!(m.get(h, k), KvResp::Value(k + 1));
            }
            assert_eq!(m.get(h, 100), KvResp::Value(101));
            let r = m.resolve(h);
            assert_eq!(r.op, Some((7, KvOp::Put(7777), 3)));
            assert_eq!(r.resp, None, "prep never executed");
            // Finish it under the adopted identity.
            assert_eq!(m.exec_put(h), KvResp::Ok);
            assert_eq!(m.get(h, 7), KvResp::Value(7777));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn attach_rejects_wrong_kind() {
        let path =
            std::env::temp_dir().join(format!("dss-map-test-{}-kind.pool", std::process::id()));
        let _ = std::fs::remove_file(&path);
        crate::DssQueue::create(&path, 1, 8).unwrap();
        match DetectableMap::attach(&path) {
            Err(AttachError::AppMismatch { expected, found }) => {
                assert_eq!(expected, KIND_DETECTABLE_MAP);
                assert_eq!(found, crate::KIND_DSS_QUEUE);
            }
            other => panic!("expected AppMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn node_reclamation_sustains_many_updates() {
        // 8 op slots per thread, 10_000 updates: without reclamation the
        // pool would exhaust after a handful.
        let m = DetectableMap::new(1, 8, 4);
        let h = m.register_thread().unwrap();
        for i in 0..10_000 {
            m.prep_put(h, i % 3, i, i);
            m.exec_put(h);
        }
        for k in 0..3 {
            let expect = (9999 / 3) * 3 + k - if k > 0 { 3 } else { 0 };
            // last i with i % 3 == k among 0..10_000
            let last = (0..10_000u64).rev().find(|i| i % 3 == k).unwrap();
            let _ = expect;
            assert_eq!(m.get(h, k), KvResp::Value(last), "key {k}");
        }
    }
}
