//! Replica-local reads: log-fed volatile replicas over a durable op log
//! (the `--replicated` axis).
//!
//! [`ReplicatedQueue`] keeps the paper's `prep-*`/`exec-*`/`resolve`
//! surface but changes the *representation*: the persistent truth is not a
//! linked structure at all, it is a **durable operation log** — per-slot
//! announce lines, a seq-indexed ring of applied-operation records, a
//! committed-sequence word, and a double-buffered state snapshot. The
//! queue's *state* lives in N **volatile replicas** (plain `VecDeque`s in
//! DRAM), each fed by tailing the log: a replica serving a read first
//! catches up to the committed sequence number (`advance_to`), then
//! answers from local memory with **no flushes and no shared-line
//! writes**. Threads are sharded onto replicas by registry slot range, so
//! on a read-heavy mix the only cross-replica traffic is the read-shared
//! committed-seq line.
//!
//! ## Write path
//!
//! `prep_*` durably publishes the operation in the calling slot's announce
//! line (two ordering points: argument, then a packed
//! `opseq ≪ 2 | kind` commit word — the argument words are double-buffered
//! by opseq parity so a torn announce can never pair an old commit with a
//! new argument). `exec_*` reuses PR 7's combiner-lease machinery
//! verbatim: one **leased appender** per batch gathers every announced
//! operation, orders it, computes its response against a replica advanced
//! to the committed prefix, writes one ring record per operation, issues a
//! single [`persist_batch`], and then durably publishes the new committed
//! seq — the batch's linearization point. Waiters park on volatile flags
//! and are released only after that publish, so a returned operation is
//! durable. A stale lease (its holder's registry nonce carried by no LIVE
//! slot) is stolen exactly as in the combining layer, which makes orphan
//! adoption cross-process safe: the thief re-reads the durable log, sees
//! which announced operations already committed (their opseq is ≤ the
//! slot's applied opseq in the log), and only applies the rest.
//!
//! ## Why replicas need no flushes
//!
//! A replica is a pure function of the durable log prefix it has applied.
//! It is never flushed because it is never *read back* after a crash:
//! recovery ([`recover`]/[`recover_one`]) discards replica state and
//! rebuilds it by replaying the committed log prefix over the last durable
//! snapshot (recovery-by-replay, §3.3-independent: no replica's state is
//! needed to repair any other slot's detectability answer). The appender
//! also never mutates replica state before the batch's publish — responses
//! are computed against a read-only overlay — so a crash mid-batch leaves
//! every replica a valid committed prefix.
//!
//! ## Ring reclamation
//!
//! The ring holds the last [`LOG_CAP`] records. Before a batch would
//! overwrite records still inside the snapshot window, the appender takes
//! a **checkpoint**: it advances *every* replica to the committed seq
//! (so none can lag behind the new floor), writes the full state — values
//! plus per-slot `(opseq, response)` detectability words — into the
//! alternate snapshot buffer, persists it, and durably flips the snapshot
//! selector. `resolve` therefore answers from snapshot + ring for any
//! operation, no matter how long ago it scrolled out of the ring.
//!
//! [`persist_batch`]: dss_pmem::Memory::persist_batch
//! [`recover`]: ReplicatedQueue::recover
//! [`recover_one`]: ReplicatedQueue::recover_one

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{
    AtomicBool, AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::{Arc, Mutex, MutexGuard};

use dss_pmem::{
    plan_regions, AppKind, AttachError, Backoff, BackoffTuner, FlushGranularity, Memory, PAddr,
    PlacementPolicy, PmemPool, Registry, SlotError, SlotState, ThreadHandle, WORDS_PER_LINE,
};
use dss_spec::types::QueueResp;

use super::{QueueFull, Resolved, ResolvedOp};

/// The structure-kind tag a [`ReplicatedQueue`] records in its pool file's
/// superblock: the log-structured representation is incompatible with the
/// linked-list layers, so neither [`DssQueue::attach`](super::DssQueue::attach)
/// nor [`CombiningQueue::attach`](super::CombiningQueue::attach) may open it.
pub const KIND_DSS_QUEUE_REPLICATED: u64 = AppKind::DssQueueReplicated.word();

/// Ring capacity in operation records. Each record is one cache line; the
/// window between checkpoints is at most this many operations. Must exceed
/// the registry's slot maximum so one batch always fits after a checkpoint.
pub const LOG_CAP: u64 = 512;

/// Replicas a [`ReplicatedQueue::new`]-style constructor builds.
pub const DEFAULT_REPLICAS: usize = 2;

// Fixed header addresses (word indices). Line 0 is NULL's line.
/// The durable committed-sequence word: records `< A_CSEQ` are applied.
const A_CSEQ: u64 = 8;
/// The durable snapshot generation; its parity selects the live buffer.
const A_SNAP: u64 = 16;
/// The volatile appender lease word (never flushed on the hot path).
const A_LEASE: u64 = 24;
/// Registry region base — first line after the fixed header.
const REG_BASE: u64 = 32;

// Announce line layout: one line per slot inside its replica's region.
// Word 0 packs `opseq << 2 | kind`; words 1 and 2 double-buffer the
// enqueue argument by opseq parity (see the module docs' torn-announce
// argument).
const ANN_KIND_MASK: u64 = 0b11;
/// Announce/record kind: enqueue.
const ANN_ENQ: u64 = 1;
/// Announce/record kind: dequeue.
const ANN_DEQ: u64 = 2;

// Ring record field offsets (one record per line).
const E_KIND: u64 = 0;
const E_ARG: u64 = 1;
const E_SLOT: u64 = 2;
const E_OPSEQ: u64 = 3;
const E_RTAG: u64 = 4;
const E_RVAL: u64 = 5;

// Response tag encoding shared by ring records and snapshot slot words.
const R_NONE: u64 = 0;
const R_OK: u64 = 1;
const R_EMPTY: u64 = 2;
const R_VALUE: u64 = 3;

// Snapshot buffer field offsets.
const S_SEQ: u64 = 0;
const S_LEN: u64 = 1;
const S_SLOT_DONE: u64 = 2; // 3 words per slot: opseq, rtag, rval

// Volatile per-slot announce states (same protocol as the combining layer).
const IDLE: u64 = 0;
const ANNOUNCED: u64 = 1;
const DONE: u64 = 2;

/// Consecutive stable observations of a foreign lease before a waiter
/// pays for a registry staleness probe.
const STALE_PROBE: u32 = 64;
/// Parked-waiter iterations before escalating to unconditional yields.
const YIELD_AFTER: u32 = 8;
/// Yield iterations before escalating further to short sleeps.
const SLEEP_AFTER: u32 = YIELD_AFTER + 64;
/// Parked-waiter sleep duration.
const PARK_SLEEP: std::time::Duration = std::time::Duration::from_micros(50);

/// Locks a mutex, riding through poisoning: a combine tenure interrupted
/// by a simulated crash unwind may poison a lock, and recovery rebuilds
/// everything the guard protects from durable state anyway.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The registry slots replica `r` of `nreplicas` serves (contiguous, by
/// the same arithmetic as [`replica_of`]).
fn slot_range(r: usize, nthreads: usize, nreplicas: usize) -> std::ops::Range<usize> {
    let lo = (r * nthreads).div_ceil(nreplicas);
    let hi = ((r + 1) * nthreads).div_ceil(nreplicas);
    lo..hi
}

/// The replica serving registry slot `s`.
fn replica_of(s: usize, nthreads: usize, nreplicas: usize) -> usize {
    s * nreplicas / nthreads
}

/// The queue's persistent geometry: fixed header + registry, then the
/// policy-placed regions. A pure function of
/// `(nthreads, nodes_per_thread, nreplicas, policy)` — attach re-derives
/// it from the pool file's app-config words alone.
#[derive(Debug, Clone)]
struct RepLayout {
    nthreads: usize,
    nreplicas: usize,
    /// Enqueue-admission bound (the analogue of the node-pool capacity).
    capacity: u64,
    /// Per-replica announce regions, one line per served slot.
    ann: Vec<std::ops::Range<u64>>,
    /// The operation-record ring, [`LOG_CAP`] lines.
    ring: std::ops::Range<u64>,
    /// The two snapshot buffers (generation parity selects one).
    snap: [std::ops::Range<u64>; 2],
}

impl RepLayout {
    fn new(
        nthreads: usize,
        nodes_per_thread: u64,
        nreplicas: usize,
        policy: PlacementPolicy,
    ) -> Self {
        assert!(nthreads > 0, "need at least one thread slot");
        assert!(nodes_per_thread > 0, "need capacity for at least one value per thread");
        assert!(
            (1..=nthreads).contains(&nreplicas),
            "replicas must be in 1..=nthreads (got {nreplicas} for {nthreads} threads)"
        );
        assert!((nthreads as u64) < LOG_CAP, "one batch must fit in the ring");
        let shared_words = REG_BASE + Registry::<PmemPool>::region_words(nthreads);
        let capacity = nthreads as u64 * nodes_per_thread;
        // Values + per-slot detectability words + header; `nthreads` slack
        // words absorb the admission gate's bounded over-admission (one
        // in-flight enqueue per slot past the volatile live estimate).
        let snap_words = S_SLOT_DONE + 3 * nthreads as u64 + capacity + nthreads as u64;
        let mut sizes: Vec<u64> = (0..nreplicas)
            .map(|r| slot_range(r, nthreads, nreplicas).len() as u64 * WORDS_PER_LINE)
            .collect();
        sizes.push(LOG_CAP * WORDS_PER_LINE);
        sizes.push(snap_words);
        sizes.push(snap_words);
        let mut regions = plan_regions(shared_words as usize, policy, shared_words, &sizes);
        let snap_b = regions.pop().expect("plan returns all regions");
        let snap_a = regions.pop().expect("plan returns all regions");
        let ring = regions.pop().expect("plan returns all regions");
        RepLayout { nthreads, nreplicas, capacity, ann: regions, ring, snap: [snap_a, snap_b] }
    }

    /// Words the pool is created with (the planned regions past it
    /// materialise lazily as they are touched).
    fn shared_words(&self) -> u64 {
        REG_BASE + Registry::<PmemPool>::region_words(self.nthreads)
    }

    fn replica_of(&self, slot: usize) -> usize {
        replica_of(slot, self.nthreads, self.nreplicas)
    }

    /// Slot `s`'s announce commit word (word 0 of its announce line).
    fn ann_commit(&self, s: usize) -> PAddr {
        let r = self.replica_of(s);
        let idx = (s - slot_range(r, self.nthreads, self.nreplicas).start) as u64;
        PAddr::from_index(self.ann[r].start + idx * WORDS_PER_LINE)
    }

    /// The argument word announce opseq `o` uses (parity double-buffer).
    fn ann_arg(&self, s: usize, o: u64) -> PAddr {
        self.ann_commit(s).offset(1 + (o & 1))
    }

    /// Base address of the ring record for sequence number `seq`.
    fn entry(&self, seq: u64) -> PAddr {
        PAddr::from_index(self.ring.start + (seq % LOG_CAP) * WORDS_PER_LINE)
    }

    /// Base word index of the snapshot buffer generation `g` selects.
    fn snap_base(&self, g: u64) -> u64 {
        self.snap[(g & 1) as usize].start
    }
}

/// One volatile replica: the queue state after applying the log prefix
/// `[0, applied)`.
struct ReplicaState {
    applied: u64,
    values: VecDeque<u64>,
}

/// The appender's volatile per-slot bookkeeping, valid for one crash
/// generation: highest applied opseq and its response per slot, plus the
/// live-value count feeding the admission gate. Only the lease holder
/// reads or writes it; a generation mismatch makes the next appender
/// rebuild it from snapshot + ring.
struct AppendCache {
    gen: u64,
    opseq: Vec<u64>,
    rtag: Vec<u64>,
    rval: Vec<u64>,
    live: u64,
}

/// The replicated execution layer: a durable operation log plus N
/// volatile, log-fed replicas with replica-local reads.
///
/// Same `prep`/`exec`/`resolve`/`recover` surface as
/// [`DssQueue`](super::DssQueue) and
/// [`CombiningQueue`](super::CombiningQueue), plus the read-side API
/// ([`peek_front`](Self::peek_front), [`len`](Self::len),
/// [`advance_to`](Self::advance_to)) that the other layers serve from
/// shared memory. See the [module docs](self) for the protocol and its
/// crash argument.
pub struct ReplicatedQueue<M: Memory = PmemPool> {
    pool: Arc<M>,
    registry: Registry<M>,
    lay: RepLayout,
    lease: PAddr,
    /// Volatile per-slot announce flags (IDLE/ANNOUNCED/DONE).
    pending: Box<[AtomicU64]>,
    /// Per-slot announce counters (owner-written; recovery re-derives
    /// them from the durable announce lines).
    opseq: Box<[AtomicU64]>,
    /// Per-slot response handoff cells, published before the DONE flag.
    resp_tag: Box<[AtomicU64]>,
    resp_val: Box<[AtomicU64]>,
    replicas: Box<[Mutex<ReplicaState>]>,
    append: Mutex<AppendCache>,
    /// Volatile live-value estimate feeding the enqueue admission gate.
    live_hint: AtomicU64,
    ops_done: Box<[AtomicU64]>,
    backoff: AtomicBool,
    tuner: BackoffTuner,
}

impl ReplicatedQueue {
    /// Creates a replicated queue for `nthreads` threads admitting up to
    /// `nthreads * nodes_per_thread` live values, with
    /// [`DEFAULT_REPLICAS`] replicas under [`PlacementPolicy::Sharded`],
    /// on a fresh line-granular pool.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero, or `nthreads`
    /// is smaller than [`DEFAULT_REPLICAS`] — use
    /// [`new_configured`](Self::new_configured) for full control.
    pub fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        Self::with_granularity(nthreads, nodes_per_thread, FlushGranularity::Line)
    }

    /// [`new`](Self::new) with an explicit flush granularity.
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new).
    pub fn with_granularity(
        nthreads: usize,
        nodes_per_thread: u64,
        granularity: FlushGranularity,
    ) -> Self {
        Self::new_in(nthreads, nodes_per_thread, granularity)
    }

    /// Creates a replicated queue on a **file-backed** pool at `path`,
    /// recording [`KIND_DSS_QUEUE_REPLICATED`] and the full configuration
    /// (threads, capacity, replicas, placement policy) in the superblock
    /// so [`attach`](Self::attach) rebuilds it from the path alone.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new).
    pub fn create<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Result<Self, AttachError> {
        Self::create_with(path, nthreads, nodes_per_thread, FlushGranularity::Line)
    }

    /// [`create`](Self::create) with an explicit flush granularity.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new).
    pub fn create_with<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
        granularity: FlushGranularity,
    ) -> Result<Self, AttachError> {
        Self::create_configured(
            path,
            nthreads,
            nodes_per_thread,
            DEFAULT_REPLICAS.min(nthreads),
            PlacementPolicy::Sharded,
            granularity,
        )
    }

    /// [`create`](Self::create) with explicit replica count and placement
    /// policy.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero or `nreplicas`
    /// is not in `1..=nthreads`.
    pub fn create_configured<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
        nreplicas: usize,
        policy: PlacementPolicy,
        granularity: FlushGranularity,
    ) -> Result<Self, AttachError> {
        let lay = RepLayout::new(nthreads, nodes_per_thread, nreplicas, policy);
        let pool = Arc::new(PmemPool::create(path, lay.shared_words() as usize, granularity)?);
        pool.set_app_config(
            KIND_DSS_QUEUE_REPLICATED,
            &[nthreads as u64, nodes_per_thread, nreplicas as u64, policy_code(policy)],
        );
        pool.set_placement(policy);
        let registry = Registry::create(Arc::clone(&pool), REG_BASE, nthreads);
        let q = Self::assemble(pool, registry, lay);
        q.clear_lease();
        Ok(q)
    }

    /// Rebuilds a replicated queue from a pool file with no in-process
    /// state: the configuration is read back from the superblock, the
    /// region plan re-derived from it, the registry re-bound (attach is a
    /// crash boundary), every replica rebuilt from the durable snapshot,
    /// and the lease cleared (whatever process held it is gone).
    ///
    /// # Errors
    ///
    /// Any [`AttachError`]; in particular [`AttachError::AppMismatch`] if
    /// the file holds a different structure kind.
    pub fn attach<P: AsRef<std::path::Path>>(path: P) -> Result<Self, AttachError> {
        let pool = Arc::new(PmemPool::attach(path)?);
        let found = pool.app_kind();
        if found != KIND_DSS_QUEUE_REPLICATED {
            return Err(AttachError::AppMismatch { expected: KIND_DSS_QUEUE_REPLICATED, found });
        }
        let [nthreads, nodes_per_thread, nreplicas, policy, ..] = pool.app_config();
        if nthreads == 0 || nodes_per_thread == 0 {
            return Err(AttachError::Corrupt("replicated queue parameter words are zero"));
        }
        if nreplicas == 0 || nreplicas > nthreads {
            return Err(AttachError::Corrupt("replica count outside 1..=nthreads"));
        }
        let policy = policy_from_code(policy);
        let lay = RepLayout::new(nthreads as usize, nodes_per_thread, nreplicas as usize, policy);
        if (pool.capacity() as u64) < lay.shared_words() {
            return Err(AttachError::Corrupt("pool smaller than the replicated layout requires"));
        }
        pool.set_placement(policy);
        let registry = Registry::attach(Arc::clone(&pool), REG_BASE)?;
        let q = Self::assemble(pool, registry, lay);
        q.clear_lease();
        Ok(q)
    }
}

fn policy_code(policy: PlacementPolicy) -> u64 {
    match policy {
        PlacementPolicy::Interleave => 0,
        PlacementPolicy::Sharded => 1,
    }
}

fn policy_from_code(code: u64) -> PlacementPolicy {
    if code == 1 {
        PlacementPolicy::Sharded
    } else {
        PlacementPolicy::Interleave
    }
}

impl<M: Memory> ReplicatedQueue<M> {
    /// Creates a replicated queue on a freshly created backend of type `M`
    /// with [`DEFAULT_REPLICAS`] replicas under
    /// [`PlacementPolicy::Sharded`] — the backend-generic constructor
    /// behind [`new`](ReplicatedQueue::new).
    ///
    /// # Panics
    ///
    /// As [`new`](ReplicatedQueue::new).
    pub fn new_in(nthreads: usize, nodes_per_thread: u64, granularity: FlushGranularity) -> Self {
        Self::new_configured(
            nthreads,
            nodes_per_thread,
            DEFAULT_REPLICAS.min(nthreads),
            PlacementPolicy::Sharded,
            granularity,
        )
    }

    /// [`new_in`](Self::new_in) with explicit replica count and placement
    /// policy.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero or `nreplicas`
    /// is not in `1..=nthreads`.
    pub fn new_configured(
        nthreads: usize,
        nodes_per_thread: u64,
        nreplicas: usize,
        policy: PlacementPolicy,
        granularity: FlushGranularity,
    ) -> Self {
        let lay = RepLayout::new(nthreads, nodes_per_thread, nreplicas, policy);
        let pool = Arc::new(M::create(lay.shared_words() as usize, granularity));
        pool.set_placement(policy);
        let registry = Registry::create(Arc::clone(&pool), REG_BASE, nthreads);
        let q = Self::assemble(pool, registry, lay);
        q.clear_lease();
        q
    }

    /// Builds the volatile superstructure over an existing pool +
    /// registry: replicas seeded from the durable snapshot, announce
    /// counters from the durable announce lines, and an append cache
    /// stamped invalid so the first appender rebuilds it from the log.
    fn assemble(pool: Arc<M>, registry: Registry<M>, lay: RepLayout) -> Self {
        let n = lay.nthreads;
        let q = ReplicatedQueue {
            lease: PAddr::from_index(A_LEASE),
            pending: (0..n).map(|_| AtomicU64::new(IDLE)).collect(),
            opseq: (0..n).map(|_| AtomicU64::new(0)).collect(),
            resp_tag: (0..n).map(|_| AtomicU64::new(R_NONE)).collect(),
            resp_val: (0..n).map(|_| AtomicU64::new(0)).collect(),
            replicas: (0..lay.nreplicas)
                .map(|_| Mutex::new(ReplicaState { applied: 0, values: VecDeque::new() }))
                .collect(),
            append: Mutex::new(AppendCache {
                gen: u64::MAX,
                opseq: vec![0; n],
                rtag: vec![R_NONE; n],
                rval: vec![0; n],
                live: 0,
            }),
            live_hint: AtomicU64::new(0),
            ops_done: (0..n).map(|_| AtomicU64::new(0)).collect(),
            backoff: AtomicBool::new(true),
            tuner: BackoffTuner::new(),
            pool,
            registry,
            lay,
        };
        for s in 0..n {
            let (o, rtag, rval) = q.slot_status(s);
            q.opseq[s].store(q.pool.peek(q.lay.ann_commit(s)) >> 2, Relaxed);
            let _ = o;
            q.resp_val[s].store(rval, Relaxed);
            q.resp_tag[s].store(rtag, Relaxed);
        }
        for rep in q.replicas.iter() {
            *lock(rep) = q.state_from_snapshot();
        }
        q.live_hint.store(q.snapshot_values().len() as u64, Relaxed);
        q
    }

    /// Stores, flushes and orders a free lease word. Safe whenever no live
    /// thread can hold the lease (construction, attach, post-crash
    /// recovery); idempotent.
    fn clear_lease(&self) {
        self.pool.store(self.lease, 0);
        self.pool.flush(self.lease);
        self.pool.drain_line(self.lease);
    }

    /// The queue's memory backend.
    pub fn pool(&self) -> &Arc<M> {
        &self.pool
    }

    /// Number of threads the queue was built for.
    pub fn nthreads(&self) -> usize {
        self.lay.nthreads
    }

    /// Number of volatile replicas.
    pub fn nreplicas(&self) -> usize {
        self.lay.nreplicas
    }

    /// The replica serving registry slot `slot`'s reads.
    pub fn replica_of_slot(&self, slot: usize) -> usize {
        self.lay.replica_of(slot)
    }

    /// The queue's persistent thread-slot registry.
    pub fn registry(&self) -> &Registry<M> {
        &self.registry
    }

    /// Accepted for knob parity with
    /// [`DssQueue::set_backoff`](super::DssQueue::set_backoff); waiters
    /// park with the adaptive tuner either way.
    pub fn set_backoff(&self, on: bool) {
        self.backoff.store(on, Relaxed);
    }

    /// Claims a free registry slot (see
    /// [`DssQueue::register_thread`](super::DssQueue::register_thread)).
    ///
    /// # Errors
    ///
    /// [`SlotError::Exhausted`] when all slots are taken.
    pub fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
        self.registry.acquire()
    }

    /// Returns a handle's slot to the registry.
    ///
    /// # Errors
    ///
    /// [`SlotError::StaleHandle`] / [`SlotError::ForeignHandle`] per
    /// [`Registry::release`].
    pub fn release_thread(&self, h: ThreadHandle) -> Result<(), SlotError> {
        self.registry.release(h)
    }

    /// Marks the crash boundary in the registry. **Required after every
    /// crash before any thread resumes `exec`**: lease-staleness detection
    /// keys off orphaned slots.
    pub fn begin_recovery(&self) {
        self.registry.begin_recovery();
    }

    /// Adopts one orphaned slot.
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] / [`SlotError::NotOrphaned`] per
    /// [`Registry::adopt`].
    pub fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
        self.registry.adopt(slot)
    }

    /// [`adopt`](Self::adopt) over every orphaned slot, ascending.
    pub fn adopt_orphans(&self) -> Vec<ThreadHandle> {
        self.registry.adopt_orphans()
    }

    /// Total completed operations (volatile; for workloads and tests).
    pub fn ops_completed(&self) -> u64 {
        self.ops_done.iter().map(|c| c.load(Relaxed)).sum()
    }

    /// The durable committed sequence number: the log prefix `[0, seq)`
    /// is applied and persisted.
    pub fn committed_seq(&self) -> u64 {
        self.pool.load(PAddr::from_index(A_CSEQ))
    }

    /// **prep-enqueue**: durably announce `(enqueue, val)` in this slot's
    /// announce line — argument first, then the packed commit word, each
    /// with its own ordering point, so a crash can lose the announce but
    /// never tear it.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the live-value estimate has reached the
    /// configured capacity.
    pub fn prep_enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), QueueFull> {
        if self.live_hint.load(Relaxed) >= self.lay.capacity {
            return Err(QueueFull);
        }
        let s = h.slot();
        let o = self.opseq[s].load(Relaxed) + 1;
        self.opseq[s].store(o, Relaxed);
        let arg = self.lay.ann_arg(s, o);
        self.pool.store(arg, val);
        self.pool.flush(arg);
        self.pool.drain_line(arg);
        let commit = self.lay.ann_commit(s);
        self.pool.store(commit, (o << 2) | ANN_ENQ);
        self.pool.flush(commit);
        self.pool.drain_line(commit);
        self.pending[s].store(ANNOUNCED, Release);
        Ok(())
    }

    /// **prep-dequeue**: durably announce a dequeue (commit word only —
    /// a dequeue has no argument), one ordering point.
    pub fn prep_dequeue(&self, h: ThreadHandle) {
        let s = h.slot();
        let o = self.opseq[s].load(Relaxed) + 1;
        self.opseq[s].store(o, Relaxed);
        let commit = self.lay.ann_commit(s);
        self.pool.store(commit, (o << 2) | ANN_DEQ);
        self.pool.flush(commit);
        self.pool.drain_line(commit);
        self.pending[s].store(ANNOUNCED, Release);
    }

    /// **exec-enqueue**: append (as the leased appender) or wait until
    /// the announced enqueue is in the durable log and the committed seq
    /// covering it is published. Idempotent like the combining layer's.
    pub fn exec_enqueue(&self, h: ThreadHandle) {
        if self.pending[h.slot()].load(Acquire) != IDLE {
            self.await_applied(h);
        }
    }

    /// **exec-dequeue**: append or wait, then return the response the
    /// appender recorded for this slot. Idempotent — re-running it
    /// re-reads the recorded response.
    pub fn exec_dequeue(&self, h: ThreadHandle) -> QueueResp {
        if self.pending[h.slot()].load(Acquire) != IDLE {
            self.await_applied(h);
        }
        let s = h.slot();
        match self.resp_tag[s].load(Acquire) {
            R_VALUE => QueueResp::Value(self.resp_val[s].load(Relaxed)),
            _ => QueueResp::Empty,
        }
    }

    /// Detectable enqueue: `prep` + `exec`.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the live-value estimate has reached capacity.
    pub fn enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), QueueFull> {
        self.prep_enqueue(h, val)?;
        self.exec_enqueue(h);
        Ok(())
    }

    /// Detectable dequeue: `prep` + `exec`. (Like combining mode, every
    /// operation goes through the announce/append path.)
    pub fn dequeue(&self, h: ThreadHandle) -> QueueResp {
        self.prep_dequeue(h);
        self.exec_dequeue(h)
    }

    /// **Replica-local front read**: catch the calling slot's replica up
    /// to the committed seq, then answer from volatile local state. No
    /// flushes, no shared-line writes — the only shared access is the
    /// committed-seq load (and the ring reads a lagging replica needs to
    /// catch up).
    pub fn peek_front(&self, h: ThreadHandle) -> Option<u64> {
        let target = self.committed_seq();
        let mut st = lock(&self.replicas[self.lay.replica_of(h.slot())]);
        self.advance_locked(&mut st, target);
        st.values.front().copied()
    }

    /// Replica-local length read (see [`peek_front`](Self::peek_front)).
    pub fn len(&self, h: ThreadHandle) -> usize {
        let target = self.committed_seq();
        let mut st = lock(&self.replicas[self.lay.replica_of(h.slot())]);
        self.advance_locked(&mut st, target);
        st.values.len()
    }

    /// Replica-local emptiness read (see [`peek_front`](Self::peek_front)).
    pub fn is_empty(&self, h: ThreadHandle) -> bool {
        self.len(h) == 0
    }

    /// Catches replica `replica` up to log sequence `seq` (clamped to the
    /// committed seq — records past it are not yet published). Reads do
    /// this implicitly; tests and the differential harness call it
    /// directly.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn advance_to(&self, replica: usize, seq: u64) {
        let target = seq.min(self.committed_seq());
        let mut st = lock(&self.replicas[replica]);
        self.advance_locked(&mut st, target);
    }

    /// Replica `replica`'s current volatile contents, front to back,
    /// *without* catching it up first (tests use this to observe lag).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn replica_values(&self, replica: usize) -> Vec<u64> {
        let st = lock(&self.replicas[replica]);
        st.values.iter().copied().collect()
    }

    /// Replica `replica`'s applied log prefix length.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn replica_applied(&self, replica: usize) -> u64 {
        lock(&self.replicas[replica]).applied
    }

    /// Applies ring records `[st.applied, target)` to a locked replica,
    /// one record at a time so a crash unwind leaves the state consistent
    /// at a record boundary.
    fn advance_locked(&self, st: &mut ReplicaState, target: u64) {
        let pool = self.pool.as_ref();
        while st.applied < target {
            let e = self.lay.entry(st.applied);
            if pool.load(e.offset(E_KIND)) == ANN_ENQ {
                st.values.push_back(pool.load(e.offset(E_ARG)));
            } else if pool.load(e.offset(E_RTAG)) == R_VALUE {
                let v = st.values.pop_front();
                debug_assert_eq!(v, Some(pool.load(e.offset(E_RVAL))));
            }
            st.applied += 1;
        }
    }

    /// Parks until this slot's announced operation is applied, appending
    /// on this thread whenever the lease is (or goes) free, and stealing
    /// the lease if its holder provably died — the combining layer's
    /// protocol verbatim.
    fn await_applied(&self, h: ThreadHandle) {
        let slot = h.slot();
        let pool = self.pool.as_ref();
        let mut bo = Backoff::attached(self.backoff.load(Relaxed), &self.tuner);
        let mut observed = 0u64;
        let mut stable = 0u32;
        let mut waits = 0u32;
        loop {
            if self.pending[slot].load(Acquire) == DONE {
                self.pending[slot].store(IDLE, Relaxed);
                return;
            }
            // Instrumented load so armed crash countdowns progress even
            // while a waiter only parks.
            let lease = pool.load(self.lease);
            if lease == 0 {
                if pool.cas(self.lease, 0, h.nonce()).is_ok() {
                    self.combine(h);
                    self.release_lease(h);
                    continue;
                }
            } else if lease != observed {
                observed = lease;
                stable = 0;
            } else {
                stable += 1;
                if stable >= STALE_PROBE && self.lease_is_stale(lease) {
                    if pool.cas(self.lease, lease, h.nonce()).is_ok() {
                        self.combine(h);
                        self.release_lease(h);
                        continue;
                    }
                    observed = 0;
                    stable = 0;
                }
            }
            waits = waits.saturating_add(1);
            if waits > SLEEP_AFTER {
                std::thread::sleep(PARK_SLEEP);
            } else if waits > YIELD_AFTER {
                std::thread::yield_now();
            } else {
                bo.spin();
            }
        }
    }

    fn release_lease(&self, h: ThreadHandle) {
        // Failure is benign: only a post-crash steal can move the lease
        // from under a holder, and then the thief owns the cleanup.
        let _ = self.pool.cas(self.lease, h.nonce(), 0);
    }

    /// Whether a lease nonce belongs to no LIVE registry slot
    /// (uninstrumented peeks: diagnosis, not protocol progress).
    fn lease_is_stale(&self, lease: u64) -> bool {
        for s in 0..self.lay.nthreads {
            if self.registry.slot_state(s) == Ok(SlotState::Live)
                && self.registry.slot_nonce(s) == Ok(lease)
            {
                return false;
            }
        }
        true
    }

    /// The leased appender: batches every announced-but-unapplied
    /// operation into the durable log (see module docs). Caller must hold
    /// the lease.
    fn combine(&self, me: ThreadHandle) {
        let pool = self.pool.as_ref();
        let mut cache = lock(&self.append);
        if cache.gen != pool.crash_generation() {
            self.rebuild_cache(&mut cache);
        }

        // Gather the batch in slot order — the order its operations are
        // appended (and hence linearized) in.
        let mut batch: Vec<(usize, u64)> = Vec::new();
        for s in 0..self.lay.nthreads {
            if self.pending[s].load(Acquire) == ANNOUNCED {
                batch.push((s, pool.load(self.lay.ann_commit(s))));
            }
        }
        if batch.is_empty() {
            return;
        }

        let committed = pool.load(PAddr::from_index(A_CSEQ));
        let fresh =
            batch.iter().filter(|&&(s, commit)| (commit >> 2) > cache.opseq[s]).count() as u64;

        // Advance this appender's own replica to the committed prefix; the
        // batch's responses are computed against it through a read-only
        // overlay, so no replica state mutates before the publish.
        let my = self.lay.replica_of(me.slot());
        let mut st = lock(&self.replicas[my]);
        self.advance_locked(&mut st, committed);

        // Checkpoint first if this batch's records would overwrite ring
        // positions still inside the snapshot window.
        let g = pool.load(PAddr::from_index(A_SNAP));
        let snap_seq = pool.load(PAddr::from_index(self.lay.snap_base(g) + S_SEQ));
        if committed + fresh > snap_seq + LOG_CAP {
            self.checkpoint(my, &mut st, &cache, committed);
        }

        // Apply the batch against (st + overlay), writing one ring record
        // per fresh operation. `pops` counts st values the batch consumed;
        // `pushes` holds batch-enqueued values not yet consumed by it.
        let mut lines: Vec<PAddr> = Vec::new();
        let mut done: Vec<(usize, u64, u64, u64)> = Vec::new();
        let mut pops: usize = 0;
        let mut pushes: VecDeque<u64> = VecDeque::new();
        let mut seq = committed;
        for &(s, commit) in batch.iter() {
            let o = commit >> 2;
            if commit == 0 || o <= cache.opseq[s] {
                // Nothing fresh: a dead appender's batch already applied
                // (and published) this operation — hand back its recorded
                // response. (`o < cache.opseq[s]` cannot happen: the
                // announce is always the slot's newest opseq.)
                done.push((s, 0, cache.rtag[s], cache.rval[s]));
                continue;
            }
            let (kind, arg, rtag, rval) = match commit & ANN_KIND_MASK {
                ANN_ENQ => {
                    let arg = pool.load(self.lay.ann_arg(s, o));
                    pushes.push_back(arg);
                    (ANN_ENQ, arg, R_OK, 0)
                }
                _ => {
                    if pops < st.values.len() {
                        let v = st.values[pops];
                        pops += 1;
                        (ANN_DEQ, 0, R_VALUE, v)
                    } else if let Some(v) = pushes.pop_front() {
                        (ANN_DEQ, 0, R_VALUE, v)
                    } else {
                        (ANN_DEQ, 0, R_EMPTY, 0)
                    }
                }
            };
            let e = self.lay.entry(seq);
            for (off, w) in [
                (E_KIND, kind),
                (E_ARG, arg),
                (E_SLOT, s as u64),
                (E_OPSEQ, o),
                (E_RTAG, rtag),
                (E_RVAL, rval),
            ] {
                pool.store(e.offset(off), w);
                lines.push(e.offset(off));
            }
            done.push((s, o, rtag, rval));
            seq += 1;
        }

        if seq != committed {
            // One ordering point for the whole batch's records, then the
            // durable publish — the batch's linearization point. A crash
            // before the publish leaves the records unreachable garbage;
            // after it, they are the committed history.
            pool.persist_batch(&lines);
            let c = PAddr::from_index(A_CSEQ);
            pool.store(c, seq);
            pool.flush(c);
            pool.drain_line(c);
        }

        // Committed-state bookkeeping (volatile only, post-publish).
        let live = (st.values.len() - pops + pushes.len()) as u64;
        cache.live = live;
        self.live_hint.store(live, Relaxed);
        drop(st);
        for &(s, o, rtag, rval) in done.iter() {
            if o != 0 {
                cache.opseq[s] = o;
                cache.rtag[s] = rtag;
                cache.rval[s] = rval;
            }
            self.resp_val[s].store(rval, Relaxed);
            self.resp_tag[s].store(rtag, Relaxed);
            self.ops_done[s].fetch_add(1, Relaxed);
            self.pending[s].store(DONE, Release);
        }
    }

    /// Writes the committed state into the alternate snapshot buffer and
    /// durably flips the selector, after advancing **every** replica to
    /// `committed` so none lags behind the new replay floor. Caller is the
    /// lease holder and has `my`'s replica (already advanced) locked.
    fn checkpoint(&self, my: usize, my_st: &mut ReplicaState, cache: &AppendCache, committed: u64) {
        let pool = self.pool.as_ref();
        for (r, rep) in self.replicas.iter().enumerate() {
            if r != my {
                let mut st = lock(rep);
                self.advance_locked(&mut st, committed);
            }
        }
        debug_assert_eq!(my_st.applied, committed);
        let g = pool.load(PAddr::from_index(A_SNAP));
        let base = self.lay.snap_base(g + 1);
        let mut words: Vec<(u64, u64)> =
            Vec::with_capacity(2 + 3 * self.lay.nthreads + my_st.values.len());
        words.push((S_SEQ, committed));
        words.push((S_LEN, my_st.values.len() as u64));
        for s in 0..self.lay.nthreads {
            let b = S_SLOT_DONE + 3 * s as u64;
            words.push((b, cache.opseq[s]));
            words.push((b + 1, cache.rtag[s]));
            words.push((b + 2, cache.rval[s]));
        }
        let vbase = S_SLOT_DONE + 3 * self.lay.nthreads as u64;
        for (i, &v) in my_st.values.iter().enumerate() {
            words.push((vbase + i as u64, v));
        }
        let lines: Vec<PAddr> =
            words.iter().map(|&(off, _)| PAddr::from_index(base + off)).collect();
        for &(off, w) in words.iter() {
            pool.store(PAddr::from_index(base + off), w);
        }
        pool.persist_batch(&lines);
        // The buffer is durable; only now flip the selector (its own
        // ordering point). A crash between the two leaves the old
        // snapshot selected — still valid, its ring window intact.
        let ga = PAddr::from_index(A_SNAP);
        pool.store(ga, g + 1);
        pool.flush(ga);
        pool.drain_line(ga);
    }

    /// Rebuilds the appender's volatile bookkeeping from snapshot + ring.
    /// Called under the append lock by the first appender of each crash
    /// generation (and by [`recover`](Self::recover)).
    fn rebuild_cache(&self, cache: &mut AppendCache) {
        let pool = self.pool.as_ref();
        let g = pool.load(PAddr::from_index(A_SNAP));
        let base = self.lay.snap_base(g);
        let snap_seq = pool.load(PAddr::from_index(base + S_SEQ));
        let mut live = pool.load(PAddr::from_index(base + S_LEN));
        for s in 0..self.lay.nthreads {
            let b = base + S_SLOT_DONE + 3 * s as u64;
            cache.opseq[s] = pool.load(PAddr::from_index(b));
            cache.rtag[s] = pool.load(PAddr::from_index(b + 1));
            cache.rval[s] = pool.load(PAddr::from_index(b + 2));
        }
        let committed = pool.load(PAddr::from_index(A_CSEQ));
        for seq in snap_seq..committed {
            let e = self.lay.entry(seq);
            let s = pool.load(e.offset(E_SLOT)) as usize;
            if s < self.lay.nthreads {
                cache.opseq[s] = pool.load(e.offset(E_OPSEQ));
                cache.rtag[s] = pool.load(e.offset(E_RTAG));
                cache.rval[s] = pool.load(e.offset(E_RVAL));
            }
            if pool.load(e.offset(E_KIND)) == ANN_ENQ {
                live += 1;
            } else if pool.load(e.offset(E_RTAG)) == R_VALUE {
                live = live.saturating_sub(1);
            }
        }
        cache.live = live;
        self.live_hint.store(live, Relaxed);
        cache.gen = pool.crash_generation();
    }

    /// Slot `slot`'s durable detectability status
    /// `(applied opseq, resp tag, resp value)` from snapshot + ring,
    /// retried if a checkpoint flips the snapshot mid-scan.
    fn slot_status(&self, slot: usize) -> (u64, u64, u64) {
        let pool = self.pool.as_ref();
        loop {
            let g = pool.load(PAddr::from_index(A_SNAP));
            let base = self.lay.snap_base(g);
            let b = base + S_SLOT_DONE + 3 * slot as u64;
            let mut o = pool.load(PAddr::from_index(b));
            let mut rtag = pool.load(PAddr::from_index(b + 1));
            let mut rval = pool.load(PAddr::from_index(b + 2));
            let snap_seq = pool.load(PAddr::from_index(base + S_SEQ));
            let committed = pool.load(PAddr::from_index(A_CSEQ));
            for seq in snap_seq..committed {
                let e = self.lay.entry(seq);
                if pool.load(e.offset(E_SLOT)) as usize == slot {
                    o = pool.load(e.offset(E_OPSEQ));
                    rtag = pool.load(e.offset(E_RTAG));
                    rval = pool.load(e.offset(E_RVAL));
                }
            }
            if pool.load(PAddr::from_index(A_SNAP)) == g {
                return (o, rtag, rval);
            }
        }
    }

    /// A fresh replica state: the durable snapshot's values at its seq
    /// (retried across a racing checkpoint flip).
    fn state_from_snapshot(&self) -> ReplicaState {
        let pool = self.pool.as_ref();
        loop {
            let g = pool.load(PAddr::from_index(A_SNAP));
            let base = self.lay.snap_base(g);
            let applied = pool.load(PAddr::from_index(base + S_SEQ));
            let len = pool.load(PAddr::from_index(base + S_LEN));
            let vbase = base + S_SLOT_DONE + 3 * self.lay.nthreads as u64;
            let values: VecDeque<u64> =
                (0..len).map(|i| pool.load(PAddr::from_index(vbase + i))).collect();
            if pool.load(PAddr::from_index(A_SNAP)) == g {
                return ReplicaState { applied, values };
            }
        }
    }

    /// **resolve**: answers from durable state only (announce line +
    /// snapshot + ring) — valid live, after a crash, and from an adopting
    /// process, with no reliance on any volatile cache.
    pub fn resolve(&self, h: ThreadHandle) -> Resolved {
        let s = h.slot();
        let commit = self.pool.load(self.lay.ann_commit(s));
        if commit == 0 {
            return Resolved { op: None, resp: None };
        }
        let o = commit >> 2;
        let op = match commit & ANN_KIND_MASK {
            ANN_ENQ => ResolvedOp::Enqueue(self.pool.load(self.lay.ann_arg(s, o))),
            _ => ResolvedOp::Dequeue,
        };
        let (applied_o, rtag, rval) = self.slot_status(s);
        let resp = if applied_o == o {
            Some(match rtag {
                R_OK => QueueResp::Ok,
                R_VALUE => QueueResp::Value(rval),
                _ => QueueResp::Empty,
            })
        } else {
            None
        };
        Resolved { op: Some(op), resp }
    }

    /// Inspection helper: the committed queue contents, rebuilt from
    /// snapshot + ring with uninstrumented peeks (valid live and after a
    /// crash; recovery and the crash harness classify against it).
    pub fn snapshot_values(&self) -> Vec<u64> {
        let pool = self.pool.as_ref();
        loop {
            let g = pool.peek(PAddr::from_index(A_SNAP));
            let base = self.lay.snap_base(g);
            let snap_seq = pool.peek(PAddr::from_index(base + S_SEQ));
            let len = pool.peek(PAddr::from_index(base + S_LEN));
            let vbase = base + S_SLOT_DONE + 3 * self.lay.nthreads as u64;
            let mut values: VecDeque<u64> =
                (0..len).map(|i| pool.peek(PAddr::from_index(vbase + i))).collect();
            let committed = pool.peek(PAddr::from_index(A_CSEQ));
            for seq in snap_seq..committed {
                let e = self.lay.entry(seq);
                if pool.peek(e.offset(E_KIND)) == ANN_ENQ {
                    values.push_back(pool.peek(e.offset(E_ARG)));
                } else if pool.peek(e.offset(E_RTAG)) == R_VALUE {
                    values.pop_front();
                }
            }
            if pool.peek(PAddr::from_index(A_SNAP)) == g {
                return values.into();
            }
        }
    }

    /// Centralized crash recovery: registry crash boundary + orphan
    /// adoption, lease cleared durably, every per-slot volatile cell
    /// re-derived from the durable log, and **every replica rebuilt by
    /// replay** — snapshot values plus the committed ring suffix
    /// (recovery-by-replay; replicas are volatile and never flushed).
    pub fn recover(&self) -> Vec<ThreadHandle> {
        self.begin_recovery();
        let adopted = self.adopt_orphans();
        self.clear_lease();
        let mut cache = lock(&self.append);
        self.rebuild_cache(&mut cache);
        for s in 0..self.lay.nthreads {
            self.opseq[s].store(self.pool.load(self.lay.ann_commit(s)) >> 2, Relaxed);
            self.resp_val[s].store(cache.rval[s], Relaxed);
            self.resp_tag[s].store(cache.rtag[s], Relaxed);
            self.pending[s].store(IDLE, Relaxed);
        }
        drop(cache);
        for rep in self.replicas.iter() {
            *lock(rep) = self.state_from_snapshot();
        }
        adopted
    }

    /// Independent per-slot recovery (§3.3): repairs only this slot's
    /// volatile cells (from the durable log) and reseeds the replica that
    /// serves it. The lease is left for the waiters' staleness steal, and
    /// the shared append cache is not touched — its crash-generation
    /// stamp no longer matches, so the next appender rebuilds it from
    /// durable state under the lease.
    pub fn recover_one(&self, h: ThreadHandle) {
        let s = h.slot();
        let (_, rtag, rval) = self.slot_status(s);
        self.resp_val[s].store(rval, Relaxed);
        self.resp_tag[s].store(rtag, Relaxed);
        self.opseq[s].store(self.pool.load(self.lay.ann_commit(s)) >> 2, Relaxed);
        self.pending[s].store(IDLE, Relaxed);
        *lock(&self.replicas[self.lay.replica_of(s)]) = self.state_from_snapshot();
    }

    /// Parity with the linked layers' post-crash allocator rebuild: the
    /// log-structured representation has no node allocator, so this is a
    /// no-op.
    pub fn rebuild_allocator(&self) {}
}

impl<M: Memory> fmt::Debug for ReplicatedQueue<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicatedQueue")
            .field("nthreads", &self.lay.nthreads)
            .field("nreplicas", &self.lay.nreplicas)
            .field("committed_seq", &self.pool.peek(PAddr::from_index(A_CSEQ)))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{DssQueue, KIND_DSS_QUEUE};
    use super::*;
    use dss_pmem::{region_segments, WritebackAdversary};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::PathBuf;
    use std::sync::atomic::Ordering;

    #[test]
    fn fifo_order_single_thread() {
        let q = ReplicatedQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        for v in [10, 20, 30] {
            q.enqueue(h0, v).unwrap();
        }
        assert_eq!(q.peek_front(h0), Some(10));
        assert_eq!(q.len(h0), 3);
        assert_eq!(q.dequeue(h0), QueueResp::Value(10));
        assert_eq!(q.dequeue(h0), QueueResp::Value(20));
        assert_eq!(q.dequeue(h0), QueueResp::Value(30));
        assert_eq!(q.dequeue(h0), QueueResp::Empty);
        assert!(q.is_empty(h0));
    }

    #[test]
    fn resolve_matches_detectable_semantics() {
        let q = ReplicatedQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        assert_eq!(q.resolve(h0), Resolved { op: None, resp: None });
        q.prep_enqueue(h0, 9).unwrap();
        q.exec_enqueue(h0);
        assert_eq!(
            q.resolve(h0),
            Resolved { op: Some(ResolvedOp::Enqueue(9)), resp: Some(QueueResp::Ok) }
        );
        q.prep_dequeue(h0);
        assert_eq!(q.exec_dequeue(h0), QueueResp::Value(9));
        assert_eq!(
            q.resolve(h0),
            Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Value(9)) }
        );
        q.prep_dequeue(h0);
        assert_eq!(q.exec_dequeue(h0), QueueResp::Empty);
        assert_eq!(
            q.resolve(h0),
            Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Empty) }
        );
    }

    #[test]
    fn exec_is_idempotent() {
        let q = ReplicatedQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        q.prep_enqueue(h0, 1).unwrap();
        q.exec_enqueue(h0);
        q.exec_enqueue(h0); // must not park on an empty publication array
        q.prep_dequeue(h0);
        assert_eq!(q.exec_dequeue(h0), QueueResp::Value(1));
        assert_eq!(q.exec_dequeue(h0), QueueResp::Value(1));
    }

    #[test]
    fn replicas_catch_up_lazily_and_on_demand() {
        let q = ReplicatedQueue::new(2, 8);
        assert_eq!(q.nreplicas(), 2);
        let h0 = q.register_thread().unwrap();
        let h1 = q.register_thread().unwrap();
        assert_ne!(q.replica_of_slot(h0.slot()), q.replica_of_slot(h1.slot()));
        for v in [1, 2, 3] {
            q.enqueue(h0, v).unwrap();
        }
        // h1's replica only catches up when h1 reads through it.
        assert_eq!(q.peek_front(h1), Some(1));
        assert_eq!(q.replica_values(q.replica_of_slot(h1.slot())), [1, 2, 3]);
        // Explicit catch-up of a named replica to the committed prefix.
        q.advance_to(q.replica_of_slot(h0.slot()), q.committed_seq());
        assert_eq!(q.replica_values(q.replica_of_slot(h0.slot())), [1, 2, 3]);
        assert_eq!(q.replica_applied(0), q.committed_seq());
    }

    #[test]
    fn concurrent_threads_conserve_values_and_per_thread_order() {
        const THREADS: usize = 4;
        const PAIRS: u64 = 150;
        let q = ReplicatedQueue::new(THREADS, 64);
        let hs: Vec<ThreadHandle> = (0..THREADS).map(|_| q.register_thread().unwrap()).collect();
        let dequeued: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = hs
                .iter()
                .enumerate()
                .map(|(tid, &h)| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        for i in 1..=PAIRS {
                            q.enqueue(h, ((tid as u64) << 32) | i).unwrap();
                            if i % 16 == 0 {
                                let _ = q.peek_front(h); // replica-local read mixed in
                            }
                            if let QueueResp::Value(v) = q.dequeue(h) {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|t| t.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = dequeued.into_iter().flatten().collect();
        let mut leftover = q.snapshot_values();
        all.append(&mut leftover);
        all.sort_unstable();
        let mut expect: Vec<u64> =
            (0..THREADS as u64).flat_map(|t| (1..=PAIRS).map(move |i| (t << 32) | i)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn checkpoints_reclaim_the_ring() {
        // Far more operations than LOG_CAP: the appender must checkpoint
        // and the committed state must survive every snapshot flip.
        let q = ReplicatedQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        for i in 0..(3 * LOG_CAP / 2) {
            q.enqueue(h0, i).unwrap();
            assert_eq!(q.dequeue(h0), QueueResp::Value(i), "i={i}");
        }
        assert!(q.committed_seq() > LOG_CAP);
        assert!(q.snapshot_values().is_empty());
        q.enqueue(h0, 77).unwrap();
        assert_eq!(q.peek_front(h0), Some(77));
        assert_eq!(q.snapshot_values(), [77]);
    }

    #[test]
    fn admission_gate_reports_full() {
        let q = ReplicatedQueue::new(1, 2); // capacity 2
        let h0 = q.register_thread().unwrap();
        q.enqueue(h0, 1).unwrap();
        q.enqueue(h0, 2).unwrap();
        assert_eq!(q.prep_enqueue(h0, 3), Err(QueueFull));
        assert_eq!(q.dequeue(h0), QueueResp::Value(1));
        q.enqueue(h0, 3).unwrap();
        assert_eq!(q.snapshot_values(), [2, 3]);
    }

    #[test]
    fn batched_appends_survive_a_crash_and_resolve() {
        // Crash a single-thread exec at each instrumented point; recovery
        // must leave resolve and the durable state consistent (the
        // exhaustive version is the harness sweep).
        for k in 1..=40u64 {
            let q = ReplicatedQueue::new(1, 8);
            let h0 = q.register_thread().unwrap();
            q.enqueue(h0, 7).unwrap();
            q.pool().arm_crash_after(k);
            let r = catch_unwind(AssertUnwindSafe(|| {
                q.prep_dequeue(h0);
                let _ = q.exec_dequeue(h0);
            }));
            q.pool().disarm_crash();
            if r.is_ok() {
                break;
            }
            q.pool().crash(&WritebackAdversary::All);
            let adopted = q.recover();
            q.rebuild_allocator();
            match q.resolve(h0) {
                Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Value(7)) } => {
                    assert!(q.snapshot_values().is_empty(), "k={k}");
                }
                Resolved { op: Some(ResolvedOp::Dequeue), resp: None } => {
                    assert_eq!(q.snapshot_values(), [7], "k={k}");
                }
                Resolved { op: Some(ResolvedOp::Enqueue(7)), resp: Some(QueueResp::Ok) } => {
                    // The dequeue announce itself was lost to the crash.
                    assert_eq!(q.snapshot_values(), [7], "k={k}");
                }
                other => panic!("k={k}: unexpected resolution {other:?}"),
            }
            // Post-recovery the queue must keep working (the crash
            // orphaned the slot; continue under the adopted handle).
            let h = adopted.first().copied().unwrap_or(h0);
            q.prep_dequeue(h);
            let _ = q.exec_dequeue(h);
            assert_eq!(q.dequeue(h), QueueResp::Empty);
        }
    }

    #[test]
    fn stale_lease_from_a_dead_appender_is_stolen() {
        let q = ReplicatedQueue::new(2, 8);
        let h0 = q.register_thread().unwrap();
        let h1 = q.register_thread().unwrap();
        // An appender that died mid-tenure: h1's nonce sits durably in
        // the lease word, and h1's thread never comes back.
        q.pool.store(q.lease, h1.nonce());
        q.pool.flush(q.lease);
        q.pool.drain_line(q.lease);
        q.pool().crash(&WritebackAdversary::None);
        q.begin_recovery();
        let mine = q.adopt(h0.slot()).unwrap();
        q.recover_one(mine);
        // h1's slot is orphaned, so its nonce is LIVE nowhere: the waiter
        // must detect staleness, steal the lease, and append.
        q.enqueue(mine, 5).unwrap();
        q.prep_dequeue(mine);
        assert_eq!(q.exec_dequeue(mine), QueueResp::Value(5));
    }

    #[test]
    fn racing_exec_calls_have_one_appender_and_all_complete() {
        const THREADS: usize = 4;
        let q = ReplicatedQueue::new(THREADS, 16);
        let hs: Vec<ThreadHandle> = (0..THREADS).map(|_| q.register_thread().unwrap()).collect();
        for (tid, &h) in hs.iter().enumerate() {
            q.prep_enqueue(h, tid as u64 + 1).unwrap();
        }
        std::thread::scope(|scope| {
            for &h in &hs {
                let q = &q;
                scope.spawn(move || q.exec_enqueue(h));
            }
        });
        let mut values = q.snapshot_values();
        values.sort_unstable();
        assert_eq!(values, [1, 2, 3, 4]);
        assert_eq!(q.pool.peek(q.lease), 0, "lease released after the batches");
        for p in q.pending.iter() {
            assert_eq!(p.load(Ordering::Relaxed), IDLE);
        }
    }

    #[test]
    fn sharded_placement_gives_each_region_its_own_segments() {
        let q = ReplicatedQueue::new(4, 8);
        assert_eq!(q.pool().placement(), PlacementPolicy::Sharded);
        let initial = q.lay.shared_words() as usize;
        let mut regions: Vec<&std::ops::Range<u64>> = q.lay.ann.iter().collect();
        regions.push(&q.lay.ring);
        regions.push(&q.lay.snap[0]);
        regions.push(&q.lay.snap[1]);
        let segs: Vec<std::ops::Range<usize>> =
            regions.iter().map(|r| region_segments(initial, r)).collect();
        for i in 0..segs.len() {
            for j in (i + 1)..segs.len() {
                assert!(
                    segs[i].end <= segs[j].start || segs[j].end <= segs[i].start,
                    "regions {i} and {j} share a segment: {:?} vs {:?}",
                    segs[i],
                    segs[j]
                );
            }
        }
    }

    /// A unique pool-file path, removed again on drop.
    struct TmpPool(PathBuf);

    impl TmpPool {
        fn new(name: &str) -> Self {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let mut p = std::env::temp_dir();
            p.push(format!("dss-replicated-{}-{name}-{n}.pool", std::process::id()));
            TmpPool(p)
        }
    }

    impl Drop for TmpPool {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn file_backed_create_attach_round_trip() {
        let tmp = TmpPool::new("roundtrip");
        {
            let q = ReplicatedQueue::create(&tmp.0, 2, 8).unwrap();
            let h0 = q.register_thread().unwrap();
            q.enqueue(h0, 1).unwrap();
            q.prep_enqueue(h0, 2).unwrap();
            q.exec_enqueue(h0);
            q.pool().drain();
        }
        let q = ReplicatedQueue::attach(&tmp.0).unwrap();
        let adopted = q.recover();
        assert_eq!(adopted.len(), 1);
        assert_eq!(
            q.resolve(adopted[0]),
            Resolved { op: Some(ResolvedOp::Enqueue(2)), resp: Some(QueueResp::Ok) }
        );
        assert_eq!(q.snapshot_values(), [1, 2]);
        // Replicas were rebuilt by replay over the attach boundary.
        assert_eq!(q.peek_front(adopted[0]), Some(1));
        assert_eq!(q.dequeue(adopted[0]), QueueResp::Value(1));
    }

    #[test]
    fn attach_rejects_the_other_execution_layers() {
        let tmp = TmpPool::new("kind-replicated");
        drop(ReplicatedQueue::create(&tmp.0, 1, 8).unwrap());
        match DssQueue::attach(&tmp.0) {
            Err(AttachError::AppMismatch { expected, found }) => {
                assert_eq!(expected, KIND_DSS_QUEUE);
                assert_eq!(found, KIND_DSS_QUEUE_REPLICATED);
            }
            other => panic!("expected AppMismatch, got {other:?}"),
        }

        let tmp = TmpPool::new("kind-cas");
        drop(DssQueue::create(&tmp.0, 1, 8).unwrap());
        match ReplicatedQueue::attach(&tmp.0) {
            Err(AttachError::AppMismatch { expected, found }) => {
                assert_eq!(expected, KIND_DSS_QUEUE_REPLICATED);
                assert_eq!(found, KIND_DSS_QUEUE);
            }
            other => panic!("expected AppMismatch, got {other:?}"),
        }
    }
}
