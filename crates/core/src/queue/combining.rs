//! Detectable flat combining for the DSS queue (the `--combining` axis).
//!
//! The DSS transformation already publishes every pending operation in a
//! cache-line-padded per-thread announce slot `X[tid]` — exactly a flat
//! combining *publication array*. [`CombiningQueue`] keeps the paper's
//! `prep-*`/`exec-*`/`resolve` surface but replaces the CAS-racing
//! execution with a combiner: `prep_*` stays announce-only, and `exec`
//! either takes the **combiner lease** (one persistent word holding the
//! holder's registry nonce) and applies *every* announced operation in one
//! sequential pass over the queue, or spin-waits until the combiner has
//! recorded its result in `X[tid]`.
//!
//! ## Batch persist ordering
//!
//! The combiner issues one [`Memory::persist_batch`] per *persist phase*
//! instead of per-operation flush/drain pairs — three ordering points per
//! batch, however many operations it holds:
//!
//! 1. **Phase A** — link words of freshly enqueued nodes and dequeuers'
//!    predecessor announces (plain stores, then one `persist_batch`);
//! 2. **Phase B** — enqueue completion marks (`ENQ_COMPL` in `X`) and
//!    dequeue claims (`deqThreadID` in the claimed node), persisted only
//!    after phase A is durable;
//! 3. **Phase C** — empty-dequeue verdicts, persisted only after phase B
//!    is durable; then the batch's single head/tail advance as *plain
//!    stores*. Head and tail are never flushed — the same discipline as
//!    the paper's Figure 4, whose head/tail CAS swings (lines 15, 19, 45,
//!    52) carry no flush: both are volatile hints that recovery
//!    reconstructs from the persisted links and `deqThreadID` claims.
//!
//! The phases preserve exactly the per-operation persist edges the paper's
//! flush order establishes: a completion mark never becomes durable before
//! the link it certifies, a claim never before the predecessor announce
//! and linkage it depends on, and an `EMPTY` verdict never before the
//! claims that made the queue empty. Under the simulator's random
//! write-back adversary any *dirty* word may persist at a crash, so these
//! three ordering points are not an optimization nicety — they are what
//! keeps a half-applied batch resolvable by the standard Figure 6 recovery
//! with no extra repair pass.
//!
//! ## Lease handoff
//!
//! The lease word holds the current combiner's registry nonce (PR 4's
//! (pid, nonce) machinery): a nonce no LIVE slot carries belongs to a dead
//! or departed holder, so a parked waiter that observes a stable foreign
//! lease probes the registry and *steals* the lease by CAS. Because
//! adoption and re-registration mint fresh nonces, a stolen lease can
//! never belong to a live combiner; and because a combiner's volatile
//! writes are reverted by the crash that killed it, the thief always sees
//! a queue whose only half-applied effects are *durable* ones — which the
//! combiner loop re-applies idempotently (an already-linked node is
//! detected by membership/mark, an existing claim is kept, a completion
//! mark is re-issued).
//!
//! The lease itself is volatile coordination and is never flushed on the
//! hot path: a crash reverts it to whatever last persisted (free, or a
//! nonce no longer carried by any LIVE slot), and both images are handled
//! — centralized recovery [`clear_lease`]s it durably, independent
//! recovery leaves it for the staleness probe to steal.
//!
//! [`clear_lease`]: CombiningQueue::recover
//!
//! [`Memory::persist_batch`]: dss_pmem::Memory::persist_batch

use std::fmt;
use std::sync::atomic::{
    AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::{Arc, Mutex};

use dss_pmem::{
    tag, AppKind, AttachError, Backoff, FlushGranularity, Memory, PAddr, PmemPool, Registry,
    SlotError, SlotState, ThreadHandle, WORDS_PER_LINE,
};
use dss_spec::types::QueueResp;

use super::{DssQueue, QueueFull, QueueLayout, Resolved, F_DEQ_TID, F_NEXT, F_VALUE, NO_DEQUEUER};

/// The structure-kind tag a [`CombiningQueue`] records in its pool file's
/// superblock: a combining pool is *not* attachable by the CAS-racing
/// [`DssQueue::attach`] (and vice versa) because the two execution layers
/// make different persist-ordering promises per word.
pub const KIND_DSS_QUEUE_COMBINING: u64 = AppKind::DssQueueCombining.word();

/// Volatile per-slot announce states (DRAM only — the persistent truth
/// lives in `X[tid]`; these flags exist so waiters can park on their own
/// cache line and combiners can scan without touching the pool).
const IDLE: u64 = 0;
const ANNOUNCED: u64 = 1;
const DONE: u64 = 2;

/// Consecutive stable observations of a foreign lease before a waiter
/// pays for a registry staleness probe.
const STALE_PROBE: u32 = 64;

/// Parked-waiter iterations before escalating from tuned spinning to
/// unconditional yields (combining batches are long compared to a CAS
/// retry, and on few-core hosts a spinning waiter starves the combiner).
const YIELD_AFTER: u32 = 8;

/// Yield iterations before escalating further to short sleeps. On an
/// oversubscribed host many yielding waiters accrue almost no vruntime
/// and keep getting rescheduled — a yield storm that starves the
/// combiner of exactly the CPU it needs to set them free. Sleeping takes
/// a waiter off the run queue entirely.
const SLEEP_AFTER: u32 = YIELD_AFTER + 64;

/// Parked-waiter sleep, long enough to drain a yield storm and short
/// enough that a woken waiter's operation latency stays small next to a
/// combining batch under flush penalties.
const PARK_SLEEP: std::time::Duration = std::time::Duration::from_micros(50);

/// One staged durable effect of a batch, applied in the phase that its
/// persist-order dependencies have already drained by.
enum Effect {
    /// Mark an enqueue completed (phase B).
    Compl { slot: usize, x: u64 },
    /// Claim `node` for `slot`'s dequeue (phase B).
    Claim { slot: usize, node: PAddr },
    /// Record an empty-queue dequeue (phase C).
    Empty { slot: usize },
}

/// Reusable combiner working memory: a batch allocates nothing.
#[derive(Default)]
struct Scratch {
    /// The gathered batch: (slot, announced X word), in slot order.
    batch: Vec<(usize, u64)>,
    /// The batch's staged phase B/C effects.
    effects: Vec<Effect>,
    /// Addresses dirtied by the current phase.
    lines: Vec<PAddr>,
    /// Nodes this batch consumed (recycled after phase C).
    consumed: Vec<PAddr>,
}

/// The flat-combining execution layer over a [`DssQueue`].
///
/// Same prep/exec/resolve surface and the same persistent queue
/// representation (Michael–Scott list + detectability words), but `exec`
/// is served by a single lease-holding combiner that batch-applies every
/// announced operation with three [`persist_batch`] ordering points per
/// batch — see the [module docs](self) for the protocol and its crash
/// argument.
///
/// Interoperability: the persisted list and `X` words are bit-compatible
/// with [`DssQueue`]'s, so [`resolve`](Self::resolve), Figure 6 recovery
/// and the checker treat combined executions exactly like CAS-raced ones.
/// Pools are still kind-tagged differently ([`KIND_DSS_QUEUE_COMBINING`])
/// so the two execution layers cannot be mixed *live* on one pool.
///
/// [`persist_batch`]: dss_pmem::Memory::persist_batch
pub struct CombiningQueue<M: Memory = PmemPool> {
    q: DssQueue<M>,
    /// The combiner lease word (its own cache line after the registry
    /// region): 0 = free, else the holder's registry nonce.
    lease: PAddr,
    /// Volatile per-slot announce flags (IDLE/ANNOUNCED/DONE).
    pending: Box<[AtomicU64]>,
    /// Combiner scratch, reused across tenures so a batch allocates
    /// nothing. Uncontended by construction: only the lease holder takes
    /// the lock.
    scratch: Mutex<Scratch>,
}

/// The lease line sits on its own cache line directly after the
/// [`DssQueue`] layout (which ends line-aligned at the registry region).
fn lease_base(layout: &QueueLayout) -> u64 {
    layout.words.next_multiple_of(WORDS_PER_LINE)
}

impl CombiningQueue {
    /// Creates a combining queue for `nthreads` threads with
    /// `nodes_per_thread` pre-allocated nodes each, on a fresh
    /// line-granular pool.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        Self::with_granularity(nthreads, nodes_per_thread, FlushGranularity::Line)
    }

    /// Creates a combining queue on a pool with the given flush
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn with_granularity(
        nthreads: usize,
        nodes_per_thread: u64,
        granularity: FlushGranularity,
    ) -> Self {
        Self::new_in(nthreads, nodes_per_thread, granularity)
    }

    /// Creates a combining queue on a **file-backed** pool at `path`,
    /// recording [`KIND_DSS_QUEUE_COMBINING`] in the superblock so
    /// [`attach`](Self::attach) (and only it — [`DssQueue::attach`]
    /// rejects the file with [`AttachError::AppMismatch`]) can rebuild it
    /// from the path alone.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn create<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Result<Self, AttachError> {
        Self::create_with(path, nthreads, nodes_per_thread, FlushGranularity::Line)
    }

    /// [`create`](Self::create) with an explicit flush granularity.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn create_with<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
        granularity: FlushGranularity,
    ) -> Result<Self, AttachError> {
        let layout = QueueLayout::new(nthreads, nodes_per_thread);
        let lease = lease_base(&layout);
        let words = lease + WORDS_PER_LINE;
        let pool = Arc::new(PmemPool::create(path, words as usize, granularity)?);
        pool.set_app_config(KIND_DSS_QUEUE_COMBINING, &[nthreads as u64, nodes_per_thread]);
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let q = DssQueue::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        q.format(layout.sentinel);
        let cq = Self::wrap(q, PAddr::from_index(lease));
        cq.clear_lease();
        Ok(cq)
    }

    /// Rebuilds a combining queue from a pool file with no in-process
    /// state, exactly like [`DssQueue::attach`] (registry re-bound,
    /// allocator rebuilt, attach is a crash boundary) plus one combining
    /// obligation: the lease word is cleared, since whatever process held
    /// it is gone and no thread of *this* process can hold it yet.
    ///
    /// # Errors
    ///
    /// Any [`AttachError`]; in particular [`AttachError::AppMismatch`] if
    /// the file holds a non-combining structure (e.g. a plain
    /// [`DssQueue`] pool).
    pub fn attach<P: AsRef<std::path::Path>>(path: P) -> Result<Self, AttachError> {
        let pool = Arc::new(PmemPool::attach(path)?);
        let found = pool.app_kind();
        if found != KIND_DSS_QUEUE_COMBINING {
            return Err(AttachError::AppMismatch { expected: KIND_DSS_QUEUE_COMBINING, found });
        }
        let [nthreads, nodes_per_thread, ..] = pool.app_config();
        if nthreads == 0 || nodes_per_thread == 0 {
            return Err(AttachError::Corrupt("combining queue parameter words are zero"));
        }
        let nthreads = nthreads as usize;
        let layout = QueueLayout::new(nthreads, nodes_per_thread);
        let lease = lease_base(&layout);
        if (pool.capacity() as u64) < lease + WORDS_PER_LINE {
            return Err(AttachError::Corrupt("pool smaller than the combining layout requires"));
        }
        let registry = Registry::attach(Arc::clone(&pool), layout.reg_base)?;
        let q = DssQueue::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        q.rebuild_allocator();
        let cq = Self::wrap(q, PAddr::from_index(lease));
        cq.clear_lease();
        Ok(cq)
    }
}

impl<M: Memory> CombiningQueue<M> {
    /// Creates a combining queue on a freshly created backend of type `M`
    /// — the backend-generic constructor behind
    /// [`new`](CombiningQueue::new).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new_in(nthreads: usize, nodes_per_thread: u64, granularity: FlushGranularity) -> Self {
        let layout = QueueLayout::new(nthreads, nodes_per_thread);
        let lease = lease_base(&layout);
        let words = lease + WORDS_PER_LINE;
        let pool = Arc::new(M::create(words as usize, granularity));
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let q = DssQueue::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        q.format(layout.sentinel);
        let cq = Self::wrap(q, PAddr::from_index(lease));
        cq.clear_lease();
        cq
    }

    fn wrap(q: DssQueue<M>, lease: PAddr) -> Self {
        let pending = (0..q.nthreads()).map(|_| AtomicU64::new(IDLE)).collect();
        CombiningQueue { q, lease, pending, scratch: Mutex::new(Scratch::default()) }
    }

    /// Stores, flushes and orders a free lease word. Safe whenever no live
    /// thread can hold the lease (construction, attach, post-crash
    /// recovery); idempotent.
    fn clear_lease(&self) {
        self.q.pool().store(self.lease, 0);
        self.q.pool().flush(self.lease);
        self.q.pool().drain_line(self.lease);
    }

    /// The queue's memory backend.
    pub fn pool(&self) -> &Arc<M> {
        self.q.pool()
    }

    /// Number of threads the queue was built for.
    pub fn nthreads(&self) -> usize {
        self.q.nthreads()
    }

    /// The queue's persistent thread-slot registry.
    pub fn registry(&self) -> &Registry<M> {
        self.q.registry()
    }

    /// Accepted for knob parity with [`DssQueue::set_backoff`]; waiters
    /// always park with the adaptive tuner (there is no CAS retry loop
    /// whose instruction sequence the flag would need to preserve).
    pub fn set_backoff(&self, on: bool) {
        self.q.set_backoff(on);
    }

    /// Claims a free registry slot (see [`DssQueue::register_thread`]).
    ///
    /// # Errors
    ///
    /// [`SlotError::Exhausted`] when all slots are taken.
    pub fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
        self.q.register_thread()
    }

    /// Returns a handle's slot to the registry
    /// (see [`DssQueue::release_thread`]).
    ///
    /// # Errors
    ///
    /// [`SlotError::StaleHandle`] / [`SlotError::ForeignHandle`] per
    /// [`Registry::release`].
    pub fn release_thread(&self, h: ThreadHandle) -> Result<(), SlotError> {
        self.q.release_thread(h)
    }

    /// Marks the crash boundary in the registry
    /// (see [`DssQueue::begin_recovery`]). **Required after every crash
    /// before any thread resumes `exec`**: lease-staleness detection keys
    /// off orphaned slots, so skipping the boundary would let waiters spin
    /// on a dead combiner's lease forever.
    pub fn begin_recovery(&self) {
        self.q.begin_recovery();
    }

    /// Adopts one orphaned slot (see [`DssQueue::adopt`]).
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] / [`SlotError::NotOrphaned`] per
    /// [`Registry::adopt`].
    pub fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
        self.q.adopt(slot)
    }

    /// [`adopt`](Self::adopt) over every orphaned slot, ascending.
    pub fn adopt_orphans(&self) -> Vec<ThreadHandle> {
        self.q.adopt_orphans()
    }

    /// Total completed operations (volatile; for workloads and tests).
    pub fn ops_completed(&self) -> u64 {
        self.q.ops_completed()
    }

    /// **resolve**: identical to [`DssQueue::resolve`] — the combiner
    /// records results in the same detectability words the CAS-racing
    /// execution uses, so detection code is shared, not duplicated.
    pub fn resolve(&self, h: ThreadHandle) -> Resolved {
        self.q.resolve(h)
    }

    /// Volatile inspection helper (see [`DssQueue::snapshot_values`]).
    pub fn snapshot_values(&self) -> Vec<u64> {
        self.q.snapshot_values()
    }

    /// **prep-enqueue**: announce-only, exactly the paper's prep (the
    /// durable announce in `X[tid]` doubles as the combining publication
    /// record), plus a volatile flag raise so combiners can scan
    /// publications without touching the pool.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the node pool is exhausted.
    pub fn prep_enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), QueueFull> {
        self.q.prep_enqueue(h, val)?;
        self.pending[h.slot()].store(ANNOUNCED, Release);
        Ok(())
    }

    /// **prep-dequeue**: announce-only (see
    /// [`prep_enqueue`](Self::prep_enqueue)).
    pub fn prep_dequeue(&self, h: ThreadHandle) {
        self.q.prep_dequeue(h);
        self.pending[h.slot()].store(ANNOUNCED, Release);
    }

    /// **exec-enqueue**: combine or wait until the announced enqueue has
    /// been applied *and persisted* (waiters are released only after the
    /// batch's final ordering point, so a returned operation is durable).
    ///
    /// Idempotent: with no announcement outstanding (double `exec`, or
    /// `exec` re-run after a crash already resolved the slot) it returns
    /// immediately instead of parking on a batch that will never form.
    pub fn exec_enqueue(&self, h: ThreadHandle) {
        if self.pending[h.slot()].load(Acquire) != IDLE {
            self.await_applied(h);
        }
    }

    /// **exec-dequeue**: combine or wait, then read the response the
    /// combiner recorded in this thread's detectability word. Idempotent
    /// like [`exec_enqueue`](Self::exec_enqueue) — re-running it just
    /// re-reads the recorded response.
    pub fn exec_dequeue(&self, h: ThreadHandle) -> QueueResp {
        if self.pending[h.slot()].load(Acquire) != IDLE {
            self.await_applied(h);
        }
        let tid = h.slot();
        let x = self.q.pool().load(self.q.x_addr(tid));
        if tag::has(x, tag::EMPTY) {
            return QueueResp::Empty;
        }
        // X holds the predecessor of the claimed node (the same encoding
        // the CAS-racing exec writes); both nodes are reclamation-guarded
        // while X names them, so the unpinned reads are safe.
        let pred = tag::addr_of(x);
        let node = tag::addr_of(self.q.pool().load(pred.offset(F_NEXT)));
        debug_assert_eq!(self.q.pool().load(node.offset(F_DEQ_TID)), tid as u64);
        QueueResp::Value(self.q.pool().load(node.offset(F_VALUE)))
    }

    /// Detectable enqueue: `prep` + `exec`.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the node pool is exhausted.
    pub fn enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), QueueFull> {
        self.prep_enqueue(h, val)?;
        self.exec_enqueue(h);
        Ok(())
    }

    /// Detectable dequeue: `prep` + `exec`. (Combining mode has no
    /// separate non-detectable path — every operation goes through the
    /// publication array.)
    pub fn dequeue(&self, h: ThreadHandle) -> QueueResp {
        self.prep_dequeue(h);
        self.exec_dequeue(h)
    }

    /// Parks until this slot's announced operation is applied, combining
    /// on this thread whenever the lease is (or goes) free, and stealing
    /// the lease if its holder provably died.
    fn await_applied(&self, h: ThreadHandle) {
        let slot = h.slot();
        let pool = self.q.pool().as_ref();
        let mut bo = Backoff::attached(true, self.q.tuner());
        let mut observed = 0u64;
        let mut stable = 0u32;
        let mut waits = 0u32;
        loop {
            if self.pending[slot].load(Acquire) == DONE {
                self.pending[slot].store(IDLE, Relaxed);
                return;
            }
            // The lease probe is an *instrumented* pool load, so armed
            // crash countdowns progress even while a waiter only parks.
            let lease = pool.load(self.lease);
            if lease == 0 {
                // No flush: the lease is volatile coordination (module
                // docs) — a crash reverting it to 0 or to a dead nonce is
                // handled by recovery / the staleness probe.
                if pool.cas(self.lease, 0, h.nonce()).is_ok() {
                    self.combine(h);
                    self.release_lease(h);
                    continue; // the batch set our DONE flag
                }
            } else if lease != observed {
                observed = lease;
                stable = 0;
            } else {
                stable += 1;
                if stable >= STALE_PROBE && self.lease_is_stale(lease) {
                    // The holder's nonce is carried by no LIVE slot: it
                    // crashed (and recovery orphaned it) or released its
                    // slot mid-lease. Steal and combine in its place.
                    if pool.cas(self.lease, lease, h.nonce()).is_ok() {
                        self.combine(h);
                        self.release_lease(h);
                        continue;
                    }
                    observed = 0;
                    stable = 0;
                }
            }
            waits = waits.saturating_add(1);
            if waits > SLEEP_AFTER {
                std::thread::sleep(PARK_SLEEP);
            } else if waits > YIELD_AFTER {
                std::thread::yield_now();
            } else {
                bo.spin();
            }
        }
    }

    fn release_lease(&self, h: ThreadHandle) {
        // Failure is benign: only a post-crash steal can move the lease
        // from under a holder, and then the thief owns the cleanup. Not
        // flushed — the lease is volatile coordination (module docs).
        let _ = self.q.pool().cas(self.lease, h.nonce(), 0);
    }

    /// Whether a lease nonce belongs to no LIVE registry slot. Uses
    /// uninstrumented peeks: a staleness probe is diagnosis, not protocol
    /// progress, so it must not perturb operation-indexed crash sweeps
    /// relative to the number of probing waiters.
    fn lease_is_stale(&self, lease: u64) -> bool {
        let reg = self.q.registry();
        for s in 0..self.q.nthreads() {
            if reg.slot_state(s) == Ok(SlotState::Live) && reg.slot_nonce(s) == Ok(lease) {
                return false;
            }
        }
        true
    }

    /// The combiner: applies every announced-but-unapplied operation in
    /// one sequential pass with three persist phases (see module docs).
    /// Caller must hold the lease.
    fn combine(&self, me: ThreadHandle) {
        let pool = self.q.pool().as_ref();
        let my = me.slot();
        let _guard = self.q.pin(my);
        let mut scratch = self.scratch.lock().unwrap();
        let Scratch { batch, effects, lines, consumed } = &mut *scratch;
        batch.clear();
        effects.clear();
        lines.clear();
        consumed.clear();

        // Gather the batch in slot order — the order the batch's
        // operations are applied (and hence linearized) in.
        for s in 0..self.q.nthreads() {
            if self.pending[s].load(Acquire) == ANNOUNCED {
                batch.push((s, pool.load(self.q.x_addr(s))));
            }
        }
        if batch.is_empty() {
            return;
        }

        // The two cursors of the sequential pass, both O(1) amortized:
        // the lease makes this combiner the only mutator, and recovery
        // re-derives both pointers (Figure 6, lines 65–69), so the
        // head/tail hints are at most a consumed prefix (claims from a
        // dead tenure) or a link chase (appends from one) behind.
        //
        // `sentinel` is the last consumed node — dequeues claim
        // `sentinel.next` and advance it; `last` is the true final node —
        // enqueues link onto it. Nodes the sentinel hops over are
        // consumed; they are collected here and recycled only after
        // phase C, when the claims that consumed this batch's share of
        // them are durable.
        let mut sentinel = tag::addr_of(pool.load(self.q.head_addr()));
        loop {
            let next = tag::addr_of(pool.load(sentinel.offset(F_NEXT)));
            if next.is_null() || pool.load(next.offset(F_DEQ_TID)) == NO_DEQUEUER {
                break;
            }
            consumed.push(sentinel);
            sentinel = next;
        }
        let mut last = tag::addr_of(pool.load(self.q.tail_addr()));
        loop {
            let next = tag::addr_of(pool.load(last.offset(F_NEXT)));
            if next.is_null() {
                break;
            }
            last = next;
        }

        // Phase A: link fresh enqueue nodes, announce dequeue
        // predecessors. Volatile stores only, then one persist.
        for &(s, x) in batch.iter() {
            if tag::has(x, tag::ENQ_PREP) {
                let node = tag::addr_of(x);
                // A fresh prep'd node carries a flushed null link and an
                // unset deqThreadID, and is not the list's last node. One
                // a dead combiner already linked is either still the
                // last, or has a successor, or has been consumed — no
                // membership walk needed.
                let applied = tag::has(x, tag::ENQ_COMPL)
                    || pool.load(node.offset(F_DEQ_TID)) != NO_DEQUEUER
                    || node == last
                    || !tag::addr_of(pool.load(node.offset(F_NEXT))).is_null();
                if !applied {
                    pool.store(last.offset(F_NEXT), node.to_word());
                    lines.push(last.offset(F_NEXT));
                    last = node;
                }
                // Already-effective enqueues (a dead combiner linked the
                // node but its completion mark may not be durable) fall
                // through: re-issuing the mark in phase B is idempotent.
                effects.push(Effect::Compl { slot: s, x });
            } else if tag::has(x, tag::DEQ_PREP) {
                if tag::has(x, tag::EMPTY) {
                    // A durable empty verdict from a dead combiner;
                    // re-persisting it in phase C is idempotent.
                    effects.push(Effect::Empty { slot: s });
                    continue;
                }
                let pred = tag::addr_of(x);
                if !pred.is_null() {
                    // A predecessor announce from a dead combiner. Keep
                    // the claim if it stuck (re-persist announce + claim);
                    // otherwise assign afresh below.
                    let node = tag::addr_of(pool.load(pred.offset(F_NEXT)));
                    if !node.is_null() && pool.load(node.offset(F_DEQ_TID)) == s as u64 {
                        pool.store(self.q.x_addr(s), x);
                        lines.push(self.q.x_addr(s));
                        effects.push(Effect::Claim { slot: s, node });
                        continue;
                    }
                }
                let node = tag::addr_of(pool.load(sentinel.offset(F_NEXT)));
                if !node.is_null() {
                    pool.store(self.q.x_addr(s), tag::set(sentinel.to_word(), tag::DEQ_PREP));
                    lines.push(self.q.x_addr(s));
                    effects.push(Effect::Claim { slot: s, node });
                    consumed.push(sentinel);
                    sentinel = node;
                } else {
                    effects.push(Effect::Empty { slot: s });
                }
            }
            // X without ENQ_PREP/DEQ_PREP: nothing announced (defensive);
            // the slot is still released below so its owner never parks
            // forever.
        }
        pool.persist_batch(lines);

        // Phase B: completion marks and claims — durable only after the
        // links and announces they certify.
        lines.clear();
        for e in effects.iter() {
            match *e {
                Effect::Compl { slot, x } => {
                    let xa = self.q.x_addr(slot);
                    pool.store(xa, tag::set(x, tag::ENQ_COMPL));
                    lines.push(xa);
                }
                Effect::Claim { slot, node } => {
                    pool.store(node.offset(F_DEQ_TID), slot as u64);
                    lines.push(node.offset(F_DEQ_TID));
                }
                Effect::Empty { .. } => {}
            }
        }
        pool.persist_batch(lines);

        // Phase C: empty verdicts — durable only after the claims that
        // made the queue empty. Then the batch's single head/tail advance,
        // as plain stores: like the Figure 4 swings, head and tail are
        // volatile hints that recovery rebuilds from links and claims.
        lines.clear();
        for e in effects.iter() {
            if let Effect::Empty { slot } = *e {
                let xa = self.q.x_addr(slot);
                pool.store(xa, tag::DEQ_PREP | tag::EMPTY);
                lines.push(xa);
            }
        }
        pool.persist_batch(lines);
        if !consumed.is_empty() {
            pool.store(self.q.head_addr(), sentinel.to_word());
        }
        if tag::addr_of(pool.load(self.q.tail_addr())) != last {
            pool.store(self.q.tail_addr(), last.to_word());
        }

        // The nodes the head hopped over are consumed; recycle them (the
        // allocator's X-reference guard keeps any a detectability word
        // still names out of circulation until the word moves on).
        for &n in consumed.iter() {
            self.q.retire_node(my, n);
        }

        // Release the batch only now: every effect is durable, so a
        // waiter that returns holds a persisted result.
        for &(s, _) in batch.iter() {
            self.q.bump_ops(s);
            self.pending[s].store(DONE, Release);
        }
    }

    /// Figure 6 recovery plus the combining obligations: reset the
    /// volatile announce flags and clear the lease (its holder — if any —
    /// died in the crash). The three-phase batch persist ordering
    /// guarantees the standard reachable-or-marked repair resolves any
    /// half-applied batch; no combining-specific repair pass exists.
    pub fn recover(&self) -> Vec<ThreadHandle> {
        for p in self.pending.iter() {
            p.store(IDLE, Relaxed);
        }
        self.clear_lease();
        self.q.recover()
    }

    /// Independent per-slot recovery (§3.3; see [`DssQueue::recover_one`]).
    /// The lease is deliberately *not* touched: other slots may already be
    /// live again and combining, and a dead holder's lease is reclaimed by
    /// the waiters' staleness steal instead.
    pub fn recover_one(&self, h: ThreadHandle) {
        self.pending[h.slot()].store(IDLE, Relaxed);
        self.q.recover_one(h);
    }

    /// Rebuilds the volatile allocator and reclamation state after a
    /// crash (see [`DssQueue::rebuild_allocator`]).
    pub fn rebuild_allocator(&self) {
        self.q.rebuild_allocator();
    }
}

impl<M: Memory> fmt::Debug for CombiningQueue<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CombiningQueue")
            .field("queue", &self.q)
            .field("lease", &self.lease)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ResolvedOp, KIND_DSS_QUEUE};
    use super::*;
    use dss_pmem::WritebackAdversary;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::PathBuf;
    use std::sync::atomic::Ordering;

    #[test]
    fn fifo_order_single_thread() {
        let q = CombiningQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        for v in [10, 20, 30] {
            q.enqueue(h0, v).unwrap();
        }
        assert_eq!(q.dequeue(h0), QueueResp::Value(10));
        assert_eq!(q.dequeue(h0), QueueResp::Value(20));
        assert_eq!(q.dequeue(h0), QueueResp::Value(30));
        assert_eq!(q.dequeue(h0), QueueResp::Empty);
    }

    #[test]
    fn resolve_matches_cas_layer_semantics() {
        let q = CombiningQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        assert_eq!(q.resolve(h0), Resolved { op: None, resp: None });
        q.prep_enqueue(h0, 9).unwrap();
        q.exec_enqueue(h0);
        assert_eq!(
            q.resolve(h0),
            Resolved { op: Some(ResolvedOp::Enqueue(9)), resp: Some(QueueResp::Ok) }
        );
        q.prep_dequeue(h0);
        assert_eq!(q.exec_dequeue(h0), QueueResp::Value(9));
        assert_eq!(
            q.resolve(h0),
            Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Value(9)) }
        );
        q.prep_dequeue(h0);
        assert_eq!(q.exec_dequeue(h0), QueueResp::Empty);
        assert_eq!(
            q.resolve(h0),
            Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Empty) }
        );
    }

    #[test]
    fn exec_is_idempotent() {
        let q = CombiningQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        q.prep_enqueue(h0, 1).unwrap();
        q.exec_enqueue(h0);
        q.exec_enqueue(h0); // must not park on an empty publication array
        q.prep_dequeue(h0);
        assert_eq!(q.exec_dequeue(h0), QueueResp::Value(1));
        assert_eq!(q.exec_dequeue(h0), QueueResp::Value(1));
    }

    #[test]
    fn concurrent_threads_conserve_values_and_per_thread_order() {
        const THREADS: usize = 4;
        const PAIRS: u64 = 150;
        let q = CombiningQueue::new(THREADS, 64);
        let hs: Vec<ThreadHandle> = (0..THREADS).map(|_| q.register_thread().unwrap()).collect();
        let dequeued: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = hs
                .iter()
                .enumerate()
                .map(|(tid, &h)| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        for i in 1..=PAIRS {
                            q.enqueue(h, ((tid as u64) << 32) | i).unwrap();
                            if let QueueResp::Value(v) = q.dequeue(h) {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|t| t.join().unwrap()).collect()
        });
        // Every enqueued value comes out exactly once (queue never holds
        // more than THREADS values, so it drains to empty by the end).
        let mut all: Vec<u64> = dequeued.into_iter().flatten().collect();
        let mut leftover = q.snapshot_values();
        all.append(&mut leftover);
        all.sort_unstable();
        let mut expect: Vec<u64> =
            (0..THREADS as u64).flat_map(|t| (1..=PAIRS).map(move |i| (t << 32) | i)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn combined_batches_survive_a_crash_and_resolve() {
        // Crash a single-thread combining exec at a few points spanning
        // the persist phases; the standard recovery must make resolve's
        // answer consistent (the exhaustive version is the harness sweep).
        for k in 1..=25u64 {
            let q = CombiningQueue::new(1, 8);
            let h0 = q.register_thread().unwrap();
            q.enqueue(h0, 7).unwrap();
            q.pool().arm_crash_after(k);
            let r = catch_unwind(AssertUnwindSafe(|| {
                q.prep_dequeue(h0);
                let _ = q.exec_dequeue(h0);
            }));
            q.pool().disarm_crash();
            if r.is_ok() {
                break;
            }
            q.pool().crash(&WritebackAdversary::All);
            q.recover();
            q.rebuild_allocator();
            match q.resolve(h0) {
                Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Value(7)) } => {
                    assert!(q.snapshot_values().is_empty(), "k={k}");
                }
                Resolved { op: Some(ResolvedOp::Dequeue), resp: None } => {
                    assert_eq!(q.snapshot_values(), [7], "k={k}");
                }
                Resolved { op: Some(ResolvedOp::Enqueue(7)), resp: Some(QueueResp::Ok) } => {
                    // The dequeue announce itself was lost to the crash.
                    assert_eq!(q.snapshot_values(), [7], "k={k}");
                }
                other => panic!("k={k}: unexpected resolution {other:?}"),
            }
        }
    }

    #[test]
    fn stale_lease_from_a_dead_combiner_is_stolen() {
        let q = CombiningQueue::new(2, 8);
        let h0 = q.register_thread().unwrap();
        let h1 = q.register_thread().unwrap();
        // A combiner that died mid-tenure: h1's nonce sits durably in the
        // lease word, and h1's thread never comes back after the crash.
        q.q.pool().store(q.lease, h1.nonce());
        q.q.pool().flush(q.lease);
        q.q.pool().drain_line(q.lease);
        q.pool().crash(&WritebackAdversary::None);
        q.begin_recovery();
        let mine = q.adopt(h0.slot()).unwrap();
        q.recover_one(mine);
        q.rebuild_allocator();
        // h1's slot is orphaned, so its nonce is LIVE nowhere: the waiter
        // must detect staleness, steal the lease, and combine.
        q.enqueue(mine, 5).unwrap();
        q.prep_dequeue(mine);
        assert_eq!(q.exec_dequeue(mine), QueueResp::Value(5));
    }

    #[test]
    fn racing_exec_calls_have_one_combiner_and_all_complete() {
        // All threads announce, then exec simultaneously: exactly one
        // takes the lease per tenure and the others' results appear.
        const THREADS: usize = 4;
        let q = CombiningQueue::new(THREADS, 16);
        let hs: Vec<ThreadHandle> = (0..THREADS).map(|_| q.register_thread().unwrap()).collect();
        for (tid, &h) in hs.iter().enumerate() {
            q.prep_enqueue(h, tid as u64 + 1).unwrap();
        }
        std::thread::scope(|scope| {
            for &h in &hs {
                let q = &q;
                scope.spawn(move || q.exec_enqueue(h));
            }
        });
        let mut values = q.snapshot_values();
        values.sort_unstable();
        assert_eq!(values, [1, 2, 3, 4]);
        assert_eq!(q.q.pool().peek(q.lease), 0, "lease released after the batches");
        for p in q.pending.iter() {
            assert_eq!(p.load(Ordering::Relaxed), IDLE);
        }
    }

    /// A unique pool-file path, removed again on drop.
    struct TmpPool(PathBuf);

    impl TmpPool {
        fn new(name: &str) -> Self {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let mut p = std::env::temp_dir();
            p.push(format!("dss-combining-{}-{name}-{n}.pool", std::process::id()));
            TmpPool(p)
        }
    }

    impl Drop for TmpPool {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn file_backed_create_attach_round_trip() {
        let tmp = TmpPool::new("roundtrip");
        {
            let q = CombiningQueue::create(&tmp.0, 2, 8).unwrap();
            let h0 = q.register_thread().unwrap();
            q.enqueue(h0, 1).unwrap();
            q.prep_enqueue(h0, 2).unwrap();
            q.exec_enqueue(h0);
            q.pool().drain();
        }
        let q = CombiningQueue::attach(&tmp.0).unwrap();
        let adopted = q.recover();
        assert_eq!(adopted.len(), 1);
        q.rebuild_allocator();
        assert_eq!(
            q.resolve(adopted[0]),
            Resolved { op: Some(ResolvedOp::Enqueue(2)), resp: Some(QueueResp::Ok) }
        );
        assert_eq!(q.snapshot_values(), [1, 2]);
        assert_eq!(q.dequeue(adopted[0]), QueueResp::Value(1));
    }

    #[test]
    fn attach_rejects_the_other_execution_layer() {
        let tmp = TmpPool::new("kind-combining");
        drop(CombiningQueue::create(&tmp.0, 1, 8).unwrap());
        match DssQueue::attach(&tmp.0) {
            Err(AttachError::AppMismatch { expected, found }) => {
                assert_eq!(expected, KIND_DSS_QUEUE);
                assert_eq!(found, KIND_DSS_QUEUE_COMBINING);
            }
            other => panic!("expected AppMismatch, got {other:?}"),
        }

        let tmp = TmpPool::new("kind-cas");
        drop(DssQueue::create(&tmp.0, 1, 8).unwrap());
        match CombiningQueue::attach(&tmp.0) {
            Err(AttachError::AppMismatch { expected, found }) => {
                assert_eq!(expected, KIND_DSS_QUEUE_COMBINING);
                assert_eq!(found, KIND_DSS_QUEUE);
            }
            other => panic!("expected AppMismatch, got {other:?}"),
        }
    }
}
