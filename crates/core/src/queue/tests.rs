//! Unit tests for the DSS queue, including crash-point sweeps that check
//! the Figure 2 detectability semantics against the persisted queue state.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use dss_pmem::{CrashSignal, WritebackAdversary};
use dss_spec::types::QueueResp;

use super::{DssQueue, QueueFull, Resolved, ResolvedOp};

/// Runs `f` with a crash armed after `k` pmem operations. Returns `true`
/// if the crash fired (and was caught), `false` if `f` completed first.
fn run_crash_at<F: FnOnce()>(q: &DssQueue, k: u64, f: F) -> bool {
    q.pool().arm_crash_after(k);
    let r = catch_unwind(AssertUnwindSafe(f));
    q.pool().disarm_crash();
    match r {
        Ok(()) => false,
        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
        Err(p) => resume_unwind(p),
    }
}

#[test]
fn fifo_order_non_detectable() {
    let q = DssQueue::new(1, 16);
    let h0 = q.register_thread().unwrap();
    for v in [10, 20, 30] {
        q.enqueue(h0, v).unwrap();
    }
    assert_eq!(q.dequeue(h0), QueueResp::Value(10));
    assert_eq!(q.dequeue(h0), QueueResp::Value(20));
    assert_eq!(q.dequeue(h0), QueueResp::Value(30));
    assert_eq!(q.dequeue(h0), QueueResp::Empty);
}

#[test]
fn fifo_order_detectable() {
    let q = DssQueue::new(1, 16);
    let h0 = q.register_thread().unwrap();
    for v in [1, 2] {
        q.prep_enqueue(h0, v).unwrap();
        q.exec_enqueue(h0);
    }
    q.prep_dequeue(h0);
    assert_eq!(q.exec_dequeue(h0), QueueResp::Value(1));
    q.prep_dequeue(h0);
    assert_eq!(q.exec_dequeue(h0), QueueResp::Value(2));
    q.prep_dequeue(h0);
    assert_eq!(q.exec_dequeue(h0), QueueResp::Empty);
}

#[test]
fn resolve_without_prep_is_bottom_bottom() {
    let q = DssQueue::new(2, 4);
    let h0 = q.register_thread().unwrap();
    let h1 = q.register_thread().unwrap();
    assert_eq!(q.resolve(h0), Resolved { op: None, resp: None });
    assert_eq!(q.resolve(h1), Resolved { op: None, resp: None });
}

#[test]
fn resolve_after_prep_enqueue_only() {
    let q = DssQueue::new(1, 4);
    let h0 = q.register_thread().unwrap();
    q.prep_enqueue(h0, 9).unwrap();
    assert_eq!(q.resolve(h0), Resolved { op: Some(ResolvedOp::Enqueue(9)), resp: None });
}

#[test]
fn resolve_after_exec_enqueue() {
    let q = DssQueue::new(1, 4);
    let h0 = q.register_thread().unwrap();
    q.prep_enqueue(h0, 9).unwrap();
    q.exec_enqueue(h0);
    assert_eq!(
        q.resolve(h0),
        Resolved { op: Some(ResolvedOp::Enqueue(9)), resp: Some(QueueResp::Ok) }
    );
    // resolve is idempotent (a process "may call [it] arbitrarily many
    // times", §2.2).
    assert_eq!(q.resolve(h0), q.resolve(h0));
}

#[test]
fn resolve_after_prep_dequeue_only() {
    let q = DssQueue::new(1, 4);
    let h0 = q.register_thread().unwrap();
    q.enqueue(h0, 5).unwrap();
    q.prep_dequeue(h0);
    assert_eq!(q.resolve(h0), Resolved { op: Some(ResolvedOp::Dequeue), resp: None });
}

#[test]
fn resolve_after_dequeue_value_and_empty() {
    let q = DssQueue::new(1, 4);
    let h0 = q.register_thread().unwrap();
    q.enqueue(h0, 5).unwrap();
    q.prep_dequeue(h0);
    assert_eq!(q.exec_dequeue(h0), QueueResp::Value(5));
    assert_eq!(
        q.resolve(h0),
        Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Value(5)) }
    );
    q.prep_dequeue(h0);
    assert_eq!(q.exec_dequeue(h0), QueueResp::Empty);
    assert_eq!(
        q.resolve(h0),
        Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Empty) }
    );
}

#[test]
fn non_detectable_ops_do_not_disturb_detection_state() {
    // Axiom 4: plain operations leave A and R untouched.
    let q = DssQueue::new(2, 8);
    let h0 = q.register_thread().unwrap();
    let h1 = q.register_thread().unwrap();
    q.prep_enqueue(h0, 1).unwrap();
    q.exec_enqueue(h0);
    let before = q.resolve(h0);
    q.enqueue(h1, 2).unwrap();
    q.dequeue(h1);
    q.dequeue(h1);
    assert_eq!(q.resolve(h0), before);
}

#[test]
fn nondetectable_dequeue_claim_never_resolves_as_detectable() {
    // A thread prep-dequeues, loses interest (crash in our story), and the
    // *same thread* later dequeues the node non-detectably. resolve must
    // not confuse the NONDET claim with a detectable one (§3.2).
    let q = DssQueue::new(1, 8);
    let h0 = q.register_thread().unwrap();
    q.enqueue(h0, 7).unwrap();
    q.prep_dequeue(h0);
    // Interrupt exec-dequeue right after it announces the predecessor in X
    // (store X, flush X = the 6th and 7th pmem ops: head, tail, next, head
    // again, store X, flush X — crash on the claim CAS, op #8).
    let crashed = run_crash_at(&q, 8, || {
        let _ = q.exec_dequeue(h0);
    });
    assert!(crashed, "expected to interrupt the claim CAS");
    q.pool().crash(&WritebackAdversary::None);
    q.recover();
    assert_eq!(q.resolve(h0), Resolved { op: Some(ResolvedOp::Dequeue), resp: None });
    // Now the same thread dequeues non-detectably.
    assert_eq!(q.dequeue(h0), QueueResp::Value(7));
    // The detectable dequeue still resolves as "did not take effect".
    assert_eq!(q.resolve(h0), Resolved { op: Some(ResolvedOp::Dequeue), resp: None });
}

#[test]
#[should_panic(expected = "without a prepared enqueue")]
fn exec_enqueue_without_prep_panics() {
    let q = DssQueue::new(1, 4);
    let h0 = q.register_thread().unwrap();
    q.exec_enqueue(h0);
}

#[test]
fn queue_full_and_ebr_recycling() {
    let q = DssQueue::new(1, 3);
    let h0 = q.register_thread().unwrap();
    // Fill the pool.
    for v in 0..3 {
        q.enqueue(h0, v).unwrap();
    }
    assert_eq!(q.enqueue(h0, 99), Err(QueueFull));
    // Dequeue two; the nodes go to EBR limbo and must eventually recycle.
    assert_eq!(q.dequeue(h0), QueueResp::Value(0));
    assert_eq!(q.dequeue(h0), QueueResp::Value(1));
    // alloc_node retries through EBR collection:
    q.enqueue(h0, 100).expect("recycled node");
    assert_eq!(q.snapshot_values(), vec![2, 100]);
}

#[test]
fn many_ops_through_small_pool() {
    // Far more operations than nodes: recycling must sustain it.
    let q = DssQueue::new(1, 8);
    let h0 = q.register_thread().unwrap();
    for i in 0..1000 {
        q.enqueue(h0, i).unwrap();
        assert_eq!(q.dequeue(h0), QueueResp::Value(i));
    }
    assert_eq!(q.dequeue(h0), QueueResp::Empty);
}

#[test]
fn concurrent_stress_conserves_values() {
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 300;
    let q = Arc::new(DssQueue::new(THREADS, 64));
    let hs: Vec<_> = (0..THREADS).map(|_| q.register_thread().unwrap()).collect();
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let q = Arc::clone(&q);
            let h = hs[tid];
            std::thread::spawn(move || {
                let mut got = Vec::new();
                for i in 0..PER_THREAD {
                    let v = (tid as u64) << 32 | i;
                    if i % 2 == 0 {
                        q.prep_enqueue(h, v).unwrap();
                        q.exec_enqueue(h);
                    } else {
                        q.enqueue(h, v).unwrap();
                    }
                    q.prep_dequeue(h);
                    match q.exec_dequeue(h) {
                        QueueResp::Value(x) => got.push(x),
                        QueueResp::Empty => {}
                        QueueResp::Ok => unreachable!(),
                    }
                }
                got
            })
        })
        .collect();
    let mut dequeued: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
    let mut remaining = q.snapshot_values();
    dequeued.append(&mut remaining);
    dequeued.sort_unstable();
    let mut expected: Vec<u64> =
        (0..THREADS as u64).flat_map(|t| (0..PER_THREAD).map(move |i| t << 32 | i)).collect();
    expected.sort_unstable();
    assert_eq!(dequeued, expected, "every value dequeued or remaining exactly once");
}

// ---------------------------------------------------------------------------
// Crash-point sweeps (Figure 2 semantics, small-scale version of E4)
// ---------------------------------------------------------------------------

fn adversaries() -> Vec<WritebackAdversary> {
    vec![
        WritebackAdversary::None,
        WritebackAdversary::All,
        WritebackAdversary::Random { seed: 7, prob: 0.5 },
    ]
}

#[test]
fn enqueue_crash_sweep_resolves_consistently() {
    for adv in adversaries() {
        for k in 1..60 {
            let q = DssQueue::new(1, 8);
            let h0 = q.register_thread().unwrap();
            let crashed = run_crash_at(&q, k, || {
                q.prep_enqueue(h0, 42).unwrap();
                q.exec_enqueue(h0);
            });
            if !crashed {
                break; // the whole operation ran; later ks are identical
            }
            q.pool().crash(&adv);
            q.recover();
            q.rebuild_allocator();
            let in_queue = q.snapshot_values() == vec![42];
            match q.resolve(h0) {
                Resolved { op: None, resp: None } => {
                    assert!(!in_queue, "k={k} {adv:?}: unprepared but enqueued")
                }
                Resolved { op: Some(ResolvedOp::Enqueue(42)), resp } => match resp {
                    Some(QueueResp::Ok) => {
                        assert!(in_queue, "k={k} {adv:?}: resolved Ok but value missing")
                    }
                    None => assert!(!in_queue, "k={k} {adv:?}: resolved ⊥ but value present"),
                    other => panic!("k={k} {adv:?}: impossible enqueue response {other:?}"),
                },
                other => panic!("k={k} {adv:?}: impossible resolution {other:?}"),
            }
        }
    }
}

#[test]
fn dequeue_crash_sweep_resolves_consistently() {
    for adv in adversaries() {
        for k in 1..60 {
            let q = DssQueue::new(1, 8);
            let h0 = q.register_thread().unwrap();
            q.enqueue(h0, 7).unwrap();
            let pre_ops = q.pool().stats().total(); // skip init + enqueue ops
            let _ = pre_ops;
            let crashed = run_crash_at(&q, k, || {
                q.prep_dequeue(h0);
                let _ = q.exec_dequeue(h0);
            });
            if !crashed {
                break;
            }
            q.pool().crash(&adv);
            q.recover();
            q.rebuild_allocator();
            let still_there = q.snapshot_values() == vec![7];
            match q.resolve(h0) {
                Resolved { op: None, resp: None } => {
                    assert!(still_there, "k={k} {adv:?}: no prep but value gone")
                }
                Resolved { op: Some(ResolvedOp::Dequeue), resp } => match resp {
                    Some(QueueResp::Value(7)) => {
                        assert!(!still_there, "k={k} {adv:?}: dequeued but still present")
                    }
                    None => assert!(still_there, "k={k} {adv:?}: no effect but value gone"),
                    other => panic!("k={k} {adv:?}: impossible dequeue response {other:?}"),
                },
                other => panic!("k={k} {adv:?}: impossible resolution {other:?}"),
            }
        }
    }
}

#[test]
fn empty_dequeue_crash_sweep() {
    for adv in adversaries() {
        for k in 1..30 {
            let q = DssQueue::new(1, 4);
            let h0 = q.register_thread().unwrap();
            let crashed = run_crash_at(&q, k, || {
                q.prep_dequeue(h0);
                let _ = q.exec_dequeue(h0);
            });
            if !crashed {
                break;
            }
            q.pool().crash(&adv);
            q.recover();
            q.rebuild_allocator();
            assert!(q.snapshot_values().is_empty(), "k={k}: queue must stay empty");
            match q.resolve(h0) {
                Resolved { op: None, resp: None }
                | Resolved { op: Some(ResolvedOp::Dequeue), resp: None }
                | Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Empty) } => {}
                other => panic!("k={k} {adv:?}: impossible resolution {other:?}"),
            }
        }
    }
}

#[test]
fn recovery_completes_interrupted_enqueue_detectability() {
    // Crash exactly between the link flush (line 12) and the X completion
    // store (line 13): the enqueue took effect but X lacks ENQ_COMPL.
    // Recovery must add the tag (Figure 6 lines 71-74).
    let q = DssQueue::new(1, 8);
    let h0 = q.register_thread().unwrap();
    q.prep_enqueue(h0, 11).unwrap();
    // exec-enqueue ops: load X, load tail, load last.next, load tail,
    // CAS link, flush link, [crash here].
    let crashed = run_crash_at(&q, 7, || q.exec_enqueue(h0));
    assert!(crashed);
    q.pool().crash(&WritebackAdversary::None);
    q.recover();
    assert_eq!(
        q.resolve(h0),
        Resolved { op: Some(ResolvedOp::Enqueue(11)), resp: Some(QueueResp::Ok) },
        "recovery must detect the persisted link"
    );
    assert_eq!(q.snapshot_values(), vec![11]);
}

#[test]
fn recovery_repairs_lagging_tail_and_head() {
    let q = DssQueue::new(2, 16);
    let h0 = q.register_thread().unwrap();
    let h1 = q.register_thread().unwrap();
    for v in [1, 2, 3] {
        q.enqueue(h0, v).unwrap();
    }
    assert_eq!(q.dequeue(h1), QueueResp::Value(1));
    q.pool().crash(&WritebackAdversary::All); // everything persists
    q.recover();
    q.rebuild_allocator();
    assert_eq!(q.snapshot_values(), vec![2, 3]);
    // The queue is fully operational after recovery.
    assert_eq!(q.dequeue(h0), QueueResp::Value(2));
    q.enqueue(h1, 4).unwrap();
    assert_eq!(q.snapshot_values(), vec![3, 4]);
}

#[test]
fn recovery_is_idempotent() {
    let q = DssQueue::new(1, 8);
    let h0 = q.register_thread().unwrap();
    q.prep_enqueue(h0, 5).unwrap();
    let crashed = run_crash_at(&q, 7, || q.exec_enqueue(h0));
    assert!(crashed);
    q.pool().crash(&WritebackAdversary::None);
    q.recover();
    let r1 = q.resolve(h0);
    let v1 = q.snapshot_values();
    q.recover(); // e.g. a crash hit during the first recovery's epilogue
    assert_eq!(q.resolve(h0), r1);
    assert_eq!(q.snapshot_values(), v1);
}

#[test]
fn independent_recovery_matches_centralized_for_x_state() {
    for k in 1..40 {
        // Two identical queues, crashed at the same point; one recovers
        // centrally, the other per-thread. resolve must agree.
        let run = |central: bool| {
            let q = DssQueue::new(1, 8);
            let h0 = q.register_thread().unwrap();
            let crashed = run_crash_at(&q, k, || {
                q.prep_enqueue(h0, 13).unwrap();
                q.exec_enqueue(h0);
            });
            if !crashed {
                return None;
            }
            q.pool().crash(&WritebackAdversary::None);
            if central {
                q.recover();
            } else {
                q.recover_one(h0);
            }
            Some(q.resolve(h0))
        };
        match (run(true), run(false)) {
            (Some(a), Some(b)) => assert_eq!(a, b, "k={k}"),
            (None, None) => break,
            _ => unreachable!("same deterministic schedule"),
        }
    }
}

#[test]
fn queue_usable_after_independent_recovery() {
    let q = DssQueue::new(2, 16);
    let h0 = q.register_thread().unwrap();
    let h1 = q.register_thread().unwrap();
    q.enqueue(h0, 1).unwrap();
    q.enqueue(h0, 2).unwrap();
    assert_eq!(q.dequeue(h1), QueueResp::Value(1));
    q.pool().crash(&WritebackAdversary::All);
    // No centralized phase: threads recover on their own and proceed; the
    // stale head/tail are repaired lazily by the helping paths.
    q.recover_one(h0);
    q.recover_one(h1);
    q.rebuild_allocator();
    assert_eq!(q.dequeue(h0), QueueResp::Value(2));
    q.enqueue(h1, 3).unwrap();
    assert_eq!(q.dequeue(h0), QueueResp::Value(3));
    assert_eq!(q.dequeue(h0), QueueResp::Empty);
}

#[test]
fn rebuild_allocator_reclaims_dead_nodes_and_keeps_live_ones() {
    let q = DssQueue::new(1, 4);
    let h0 = q.register_thread().unwrap();
    // Crash during prep-enqueue, after the X announcement store (op 5) but
    // before its flush (op 6): the fresh node is referenced only by X.
    let crashed = run_crash_at(&q, 6, || {
        q.prep_enqueue(h0, 50).unwrap();
    });
    assert!(crashed);
    q.pool().crash(&WritebackAdversary::All); // X persisted
    q.recover();
    q.rebuild_allocator();
    // The X-referenced node must stay allocated (resolve may read it)...
    assert_eq!(q.resolve(h0), Resolved { op: Some(ResolvedOp::Enqueue(50)), resp: None });
    // ...and the remaining 3 nodes are free.
    assert_eq!(q.nodes.free_count(), 3);
}

#[test]
fn crash_during_recovery_then_recovery_again() {
    let q = DssQueue::new(1, 8);
    let h0 = q.register_thread().unwrap();
    q.prep_enqueue(h0, 21).unwrap();
    let crashed = run_crash_at(&q, 7, || q.exec_enqueue(h0));
    assert!(crashed);
    q.pool().crash(&WritebackAdversary::None);
    // Recovery itself crashes at every possible point; a second, complete
    // recovery must still land in a correct state.
    for k in 1..40 {
        let crashed = run_crash_at(&q, k, || {
            q.recover();
        });
        if !crashed {
            break;
        }
        q.pool().crash(&WritebackAdversary::None);
    }
    q.recover();
    assert_eq!(
        q.resolve(h0),
        Resolved { op: Some(ResolvedOp::Enqueue(21)), resp: Some(QueueResp::Ok) }
    );
    assert_eq!(q.snapshot_values(), vec![21]);
}

#[test]
fn ops_completed_counts() {
    let q = DssQueue::new(2, 8);
    let h0 = q.register_thread().unwrap();
    let h1 = q.register_thread().unwrap();
    q.enqueue(h0, 1).unwrap();
    q.prep_enqueue(h1, 2).unwrap();
    q.exec_enqueue(h1);
    q.dequeue(h0);
    assert_eq!(q.ops_completed(), 3);
}

#[test]
fn resolve_survives_node_recycling() {
    // A detectable dequeue's announced predecessor (and the claimed node)
    // stay referenced by X[tid] after the operation completes. Heavy churn
    // through a tiny node pool forces epoch reclamation to recycle nodes;
    // the X-referenced ones must be exempt, or a later resolve chases
    // reinitialized memory and denies an operation that took effect.
    let q = DssQueue::new(2, 4);
    let h0 = q.register_thread().unwrap();
    let h1 = q.register_thread().unwrap();
    q.enqueue(h1, 7).unwrap();
    q.prep_dequeue(h0);
    assert_eq!(q.exec_dequeue(h0), QueueResp::Value(7));
    // Churn far past the pool size on the other thread.
    for i in 0..100 {
        q.enqueue(h1, 100 + i).unwrap();
        assert_eq!(q.dequeue(h1), QueueResp::Value(100 + i));
    }
    assert_eq!(
        q.resolve(h0),
        Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Value(7)) }
    );
}

#[test]
fn resolve_enqueue_value_survives_node_recycling() {
    // Same hazard on the enqueue side: X[tid] names the enqueued node and
    // resolve reads its value field, which recycling would overwrite.
    let q = DssQueue::new(2, 4);
    let h0 = q.register_thread().unwrap();
    let h1 = q.register_thread().unwrap();
    q.prep_enqueue(h0, 42).unwrap();
    q.exec_enqueue(h0);
    assert_eq!(q.dequeue(h1), QueueResp::Value(42)); // retire h0's node
    for i in 0..100 {
        q.enqueue(h1, 200 + i).unwrap();
        assert_eq!(q.dequeue(h1), QueueResp::Value(200 + i));
    }
    assert_eq!(
        q.resolve(h0),
        Resolved { op: Some(ResolvedOp::Enqueue(42)), resp: Some(QueueResp::Ok) }
    );
}
