//! The DSS queue (paper §3): layout, construction, and detection.

mod combining;
mod ops;
mod recovery;
mod replicated;
#[cfg(test)]
mod tests;

pub use combining::{CombiningQueue, KIND_DSS_QUEUE_COMBINING};
pub use replicated::{
    ReplicatedQueue, DEFAULT_REPLICAS, KIND_DSS_QUEUE_REPLICATED, LOG_CAP as REPLICATED_LOG_CAP,
};

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use dss_pmem::{
    tag, AppKind, AttachError, Backoff, FlushGranularity, Memory, NodePool, PAddr, PmemPool,
    Registry, SlotError, ThreadHandle, WORDS_PER_LINE,
};

use crate::detect::DetectableCore;
use dss_spec::types::QueueResp;

/// The structure-kind tag a [`DssQueue`] records in its pool file's
/// superblock (see [`PmemPool::set_app_config`]), making the file
/// self-describing for [`DssQueue::attach`].
pub const KIND_DSS_QUEUE: u64 = AppKind::DssQueue.word();

/// Node field offsets (a queue node is `{ value, next, deqThreadID }`,
/// padded to 4 words so a node never straddles a cache line and the paper's
/// whole-node `FLUSH(node)` is a single flush under line granularity).
pub(crate) const F_VALUE: u64 = 0;
pub(crate) const F_NEXT: u64 = 1;
pub(crate) const F_DEQ_TID: u64 = 2;
pub(crate) const NODE_WORDS: u64 = 4;

/// The paper's `deqThreadID = −1`: no thread has dequeued this node.
pub(crate) const NO_DEQUEUER: u64 = u64::MAX;

/// The enqueue-side error: the pre-allocated node pool is exhausted.
///
/// The paper's setup pre-allocates a fixed pool per thread; running out is
/// an explicit, recoverable condition rather than a panic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueueFull;

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("queue node pool exhausted")
    }
}

impl std::error::Error for QueueFull {}

/// The operation reported by [`DssQueue::resolve`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResolvedOp {
    /// The last prepared operation was `enqueue(value)`.
    Enqueue(u64),
    /// The last prepared operation was `dequeue()`.
    Dequeue,
}

/// The answer of [`DssQueue::resolve`]: the DSS `(A[pᵢ], R[pᵢ])` pair.
///
/// `op == None` means no operation was ever prepared (`(⊥, ⊥)`).
/// `resp == None` means the prepared operation did not take effect.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Resolved {
    /// The most recently prepared operation, if any.
    pub op: Option<ResolvedOp>,
    /// Its response, if it took effect.
    pub resp: Option<QueueResp>,
}

/// The DSS queue: a lock-free, strictly linearizable, detectable
/// recoverable MPMC FIFO queue (paper §3, Figures 3, 4 and 6).
///
/// The queue is a Michael–Scott singly-linked list in persistent memory,
/// extended with
///
/// * flush instructions in the style of Friedman et al.'s durable queue;
/// * a `deqThreadID` field per node identifying the dequeuer;
/// * a per-thread detectability word `X[tid]` holding a tagged node
///   pointer (`ENQ_PREP`/`ENQ_COMPL`/`DEQ_PREP`/`EMPTY` in the pointer's
///   high bits — footnote 5's "borrowed" bits).
///
/// Detectable operations go through `prep-*`/`exec-*` pairs; plain
/// [`enqueue`](Self::enqueue)/[`dequeue`](Self::dequeue) skip every access
/// to `X` (Axiom 4's non-detectable path). After a crash, run either the
/// centralized [`recover`](Self::recover) (Figure 6, restructured as
/// "adopt every orphaned slot, then resolve each") or the per-slot
/// [`recover_one`](Self::recover_one) (§3.3), then ask
/// [`resolve`](Self::resolve) what happened.
///
/// Thread identity comes from a persistent slot [`Registry`] embedded in
/// the pool: call [`register_thread`](Self::register_thread) to obtain a
/// [`ThreadHandle`], thread it through every operation, and after a crash
/// either keep using the (Copy) handle — the paper §2's
/// recover-under-the-same-ID model — or let any surviving thread
/// [`adopt`](Self::adopt) the orphaned slots of threads that never came
/// back (§3.3's generalization). A bad slot index is a typed
/// [`SlotError`], not an abort.
///
/// The queue is generic over its [`Memory`] backend: the default
/// [`PmemPool`] simulates persistence and supports crash injection, while
/// [`DramPool`](dss_pmem::DramPool) (via [`new_in`](Self::new_in)) runs the
/// identical instruction sequence on plain atomics.
pub struct DssQueue<M: Memory = PmemPool> {
    /// The shared detectability skeleton: pool, registry, EBR, backoff,
    /// and the per-thread `X` words (see [`DetectableCore`]).
    core: DetectableCore<M>,
    pub(crate) nodes: NodePool,
    /// Monotone per-thread counters of completed operations (volatile;
    /// used by workloads and tests, never by the algorithm).
    ops_done: Box<[AtomicU64]>,
}

// Fixed low-address layout, one cache line per hot word: head, tail and
// each thread's X entry get their own line so CAS retries on one never
// invalidate the others (false sharing).
pub(crate) const A_HEAD: u64 = WORDS_PER_LINE;
pub(crate) const A_TAIL: u64 = 2 * WORDS_PER_LINE;
pub(crate) const A_X_BASE: u64 = 3 * WORDS_PER_LINE;

/// The queue's pool layout, derived from `(nthreads, nodes_per_thread)`
/// alone — which is exactly why those two parameters in a pool file's
/// superblock make the file self-describing.
struct QueueLayout {
    sentinel: u64,
    region: u64,
    reg_base: u64,
    words: u64,
}

impl QueueLayout {
    fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        assert!(nthreads > 0, "need at least one thread");
        assert!(nodes_per_thread > 0, "need at least one node per thread");
        // Layout: [0:NULL][head line][tail line][n X lines][sentinel]
        // [region...], with the sentinel and region aligned to NODE_WORDS
        // so each node sits within one cache line.
        let x_end = A_X_BASE + nthreads as u64 * WORDS_PER_LINE;
        let sentinel = x_end.next_multiple_of(NODE_WORDS);
        let region = sentinel + NODE_WORDS;
        let node_end = region + nodes_per_thread * nthreads as u64 * NODE_WORDS;
        // The registry region goes *after* every pre-registry region, so
        // persisted layouts of head/tail/X/nodes are unchanged.
        let reg_base = node_end.next_multiple_of(WORDS_PER_LINE);
        let words = reg_base + Registry::<PmemPool>::region_words(nthreads);
        QueueLayout { sentinel, region, reg_base, words }
    }
}

impl DssQueue {
    /// Creates a queue for `nthreads` threads with `nodes_per_thread`
    /// pre-allocated nodes each, on a fresh line-granular pool.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        Self::with_granularity(nthreads, nodes_per_thread, FlushGranularity::Line)
    }

    /// Creates a queue on a pool with the given flush granularity
    /// (experiment E7 sweeps this).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn with_granularity(
        nthreads: usize,
        nodes_per_thread: u64,
        granularity: FlushGranularity,
    ) -> Self {
        Self::new_in(nthreads, nodes_per_thread, granularity)
    }

    /// Creates a queue on a **file-backed** pool at `path` (line-granular):
    /// the file holds the queue's entire persistence domain plus enough
    /// superblock metadata ([`KIND_DSS_QUEUE`], `nthreads`,
    /// `nodes_per_thread`) for a fresh process to rebuild everything with
    /// [`attach`](Self::attach) from the path alone.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn create<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Result<Self, AttachError> {
        Self::create_with(path, nthreads, nodes_per_thread, FlushGranularity::Line)
    }

    /// [`create`](Self::create) with an explicit flush granularity.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn create_with<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
        granularity: FlushGranularity,
    ) -> Result<Self, AttachError> {
        let layout = QueueLayout::new(nthreads, nodes_per_thread);
        let pool = Arc::new(PmemPool::create(path, layout.words as usize, granularity)?);
        pool.set_app_config(KIND_DSS_QUEUE, &[nthreads as u64, nodes_per_thread]);
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        q.format(layout.sentinel);
        Ok(q)
    }

    /// Rebuilds a queue from a pool file **with no in-process state**: the
    /// superblock's kind/parameter words identify the structure, the
    /// registry is re-bound (not reformatted), the node allocator is
    /// rebuilt from the persisted list, and fresh EBR domains replace the
    /// dead process's. The previous owner's operations are exactly where
    /// its last fenced flush left them.
    ///
    /// Attaching is a crash boundary, so the usual post-crash workflow
    /// applies: run [`recover`](Self::recover) (Figure 6 adopt-then-
    /// resolve) or per-slot [`adopt`](Self::adopt)/
    /// [`recover_one`](Self::recover_one), then [`resolve`](Self::resolve)
    /// each adopted handle.
    ///
    /// # Errors
    ///
    /// Any [`AttachError`]: I/O or superblock validation failure, or
    /// [`AttachError::AppMismatch`] if the file holds a different
    /// structure.
    pub fn attach<P: AsRef<std::path::Path>>(path: P) -> Result<Self, AttachError> {
        let pool = Arc::new(PmemPool::attach(path)?);
        let found = pool.app_kind();
        if found != KIND_DSS_QUEUE {
            return Err(AttachError::AppMismatch { expected: KIND_DSS_QUEUE, found });
        }
        let [nthreads, nodes_per_thread, ..] = pool.app_config();
        if nthreads == 0 || nodes_per_thread == 0 {
            return Err(AttachError::Corrupt("queue parameter words are zero"));
        }
        let nthreads = nthreads as usize;
        let layout = QueueLayout::new(nthreads, nodes_per_thread);
        if (pool.capacity() as u64) < layout.words {
            return Err(AttachError::Corrupt("pool smaller than the queue layout requires"));
        }
        let registry = Registry::attach(Arc::clone(&pool), layout.reg_base)?;
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        // The allocator is volatile: rebuild it from the persisted list
        // right away so an early alloc cannot hand out a node the dead
        // process left in the queue. (Reachability from the possibly-lagging
        // persisted head is a superset of the true live set, so this is
        // safe even before `recover` repairs head/tail.)
        q.rebuild_allocator();
        Ok(q)
    }
}

impl<M: Memory> DssQueue<M> {
    /// Creates a queue on a freshly created backend of type `M`
    /// ([`Memory::create`]) — the backend-generic constructor behind
    /// [`new`](DssQueue::new)/[`with_granularity`](DssQueue::with_granularity).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new_in(nthreads: usize, nodes_per_thread: u64, granularity: FlushGranularity) -> Self {
        let layout = QueueLayout::new(nthreads, nodes_per_thread);
        let pool = Arc::new(M::create(layout.words as usize, granularity));
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        q.format(layout.sentinel);
        q
    }

    /// The shared constructor tail: in-DRAM side tables (node allocator,
    /// EBR domains, backoff tuner, op counters) over an existing pool +
    /// registry — everything `attach` must rebuild rather than map.
    fn assemble(
        pool: Arc<M>,
        registry: Registry<M>,
        layout: &QueueLayout,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Self {
        let nodes =
            NodePool::new(PAddr::from_index(layout.region), NODE_WORDS, nodes_per_thread, nthreads);
        DssQueue {
            core: DetectableCore::new(pool, registry, nthreads, A_X_BASE, WORDS_PER_LINE),
            nodes,
            ops_done: (0..nthreads).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Writes and persists the initial queue state (fresh pools only —
    /// never run on attach).
    fn format(&self, sentinel: u64) {
        // Initial state: head = tail = sentinel; sentinel.next = NULL,
        // sentinel unmarked; X[i] = NULL for all i. Persist everything.
        let s = PAddr::from_index(sentinel);
        self.core.pool.store(s.offset(F_VALUE), 0);
        self.core.pool.store(s.offset(F_NEXT), PAddr::NULL.to_word());
        self.core.pool.store(s.offset(F_DEQ_TID), NO_DEQUEUER);
        self.flush_node(s);
        self.core.pool.store(self.head_addr(), s.to_word());
        self.core.pool.flush(self.head_addr());
        self.core.pool.store(self.tail_addr(), s.to_word());
        self.core.pool.flush(self.tail_addr());
        self.core.format_x();
        self.core.pool.drain();
    }

    /// Enables or disables contention management (bounded exponential
    /// backoff after failed CAS, plus elision of provably redundant
    /// announce flushes in `exec-dequeue`). Default off: the instruction
    /// sequence then matches the paper's pseudocode exactly.
    pub fn set_backoff(&self, on: bool) {
        self.core.set_backoff(on);
    }

    /// Whether contention management is enabled.
    pub fn backoff_enabled(&self) -> bool {
        self.core.backoff_enabled()
    }

    /// A fresh per-operation backoff, enabled per the queue's setting and
    /// capped by the queue's contention-tuned
    /// [`BackoffTuner`](dss_pmem::BackoffTuner).
    pub(crate) fn new_backoff(&self) -> Backoff<'_> {
        self.core.new_backoff()
    }

    /// The queue's contention tuner (shared with the combining layer).
    pub(crate) fn tuner(&self) -> &dss_pmem::BackoffTuner {
        self.core.tuner()
    }

    /// The queue's memory backend (on [`PmemPool`]: crash it, inspect it,
    /// count its operations).
    pub fn pool(&self) -> &Arc<M> {
        self.core.pool()
    }

    /// Number of threads the queue was built for.
    pub fn nthreads(&self) -> usize {
        self.core.nthreads()
    }

    /// The queue's persistent thread-slot registry (inspect slot states,
    /// run registry-level operations directly).
    pub fn registry(&self) -> &Registry<M> {
        self.core.registry()
    }

    /// Claims a free registry slot and returns the [`ThreadHandle`] every
    /// operation takes. Any stale EBR pin a previous lease of the slot
    /// left behind is cleared; its un-reclaimed retirees are inherited.
    ///
    /// # Errors
    ///
    /// [`SlotError::Exhausted`] when all `nthreads` slots are taken.
    pub fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
        self.core.register_thread()
    }

    /// Returns a handle's slot to the registry.
    ///
    /// # Errors
    ///
    /// [`SlotError::StaleHandle`] if the slot's lease has moved on (e.g.
    /// it was adopted after a crash), [`SlotError::ForeignHandle`] for a
    /// handle from another queue's registry.
    pub fn release_thread(&self, h: ThreadHandle) -> Result<(), SlotError> {
        self.core.release_thread(h)
    }

    /// Marks the crash boundary in the registry: every slot that was LIVE
    /// at the crash becomes ORPHANED and adoptable. Idempotent per crash;
    /// [`recover`](Self::recover) calls this itself — call it directly
    /// only when driving partial recovery by hand ([`adopt`](Self::adopt)
    /// / [`recover_one`](Self::recover_one)).
    pub fn begin_recovery(&self) {
        self.core.begin_recovery();
    }

    /// Adopts one orphaned slot on behalf of a thread that never came
    /// back: re-LIVEs the slot under a fresh lease and clears the dead
    /// thread's stale EBR pin (its retirees are inherited, not leaked).
    /// Follow with [`recover_one`](Self::recover_one) to repair the
    /// slot's detectability word.
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] / [`SlotError::NotOrphaned`] per
    /// [`Registry::adopt`].
    pub fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
        self.core.adopt(slot)
    }

    /// [`adopt`](Self::adopt) over every orphaned slot, ascending.
    pub fn adopt_orphans(&self) -> Vec<ThreadHandle> {
        self.core.adopt_orphans()
    }

    pub(crate) fn head_addr(&self) -> PAddr {
        PAddr::from_index(A_HEAD)
    }

    pub(crate) fn tail_addr(&self) -> PAddr {
        PAddr::from_index(A_TAIL)
    }

    // Handle validity is the core's concern; see DetectableCore::x_addr.
    pub(crate) fn x_addr(&self, slot: usize) -> PAddr {
        self.core.x_addr(slot)
    }

    /// `FLUSH(node)`: persists a whole node. One flush under line
    /// granularity (nodes are line-aligned), one per field under word
    /// granularity.
    pub(crate) fn flush_node(&self, node: PAddr) {
        match self.core.pool.granularity() {
            FlushGranularity::Line => self.core.pool.flush(node),
            FlushGranularity::Word => {
                self.core.pool.flush(node.offset(F_VALUE));
                self.core.pool.flush(node.offset(F_NEXT));
                self.core.pool.flush(node.offset(F_DEQ_TID));
            }
        }
    }

    /// Per-address ordering drain of a whole node: the targeted
    /// counterpart of [`flush_node`](Self::flush_node), writing back only
    /// the node's own pending flush units (one line, or three words under
    /// word granularity) so every other pending flush stays coalescible.
    pub(crate) fn drain_node(&self, node: PAddr) {
        self.core.pool.drain_lines(&[
            node.offset(F_VALUE),
            node.offset(F_NEXT),
            node.offset(F_DEQ_TID),
        ]);
    }

    /// The nodes some thread's detectability word still references:
    /// `X[i]`'s own node plus, for an announced dequeue predecessor, its
    /// successor — `resolve` dereferences both, however long ago the
    /// operation completed. These must survive both a crash-time allocator
    /// rebuild *and* crash-free epoch reclamation; recycling one would
    /// make a later `resolve` chase reinitialized memory and misreport
    /// the operation as not having taken effect.
    pub(crate) fn x_referenced_nodes(&self) -> Vec<PAddr> {
        let mut out = Vec::new();
        for i in 0..self.nthreads() {
            let x = self.core.pool.load(self.x_addr(i));
            let d = tag::addr_of(x);
            if !d.is_null() {
                out.push(d);
                let next = tag::addr_of(self.core.pool.load(d.offset(F_NEXT)));
                if !next.is_null() {
                    out.push(next);
                }
            }
        }
        out
    }

    /// Allocates a node, recycling retired nodes through EBR when the free
    /// lists run dry — except nodes `resolve` can still reach through a
    /// detectability word ([`x_referenced_nodes`](Self::x_referenced_nodes)),
    /// which stay in limbo until the word moves on.
    pub(crate) fn alloc_node(&self, tid: usize) -> Result<PAddr, QueueFull> {
        self.nodes
            .alloc_with_reclaim_guarded(tid, &self.core.ebr, || self.x_referenced_nodes())
            .ok_or(QueueFull)
    }

    pub(crate) fn pin(&self, tid: usize) -> dss_pmem::EbrGuard<'_> {
        self.core.pin(tid)
    }

    /// Retires a dequeued predecessor node (ignored for the static initial
    /// sentinel, which is not part of the node region).
    pub(crate) fn retire_node(&self, tid: usize, node: PAddr) {
        if self.nodes.contains(node) {
            self.core.ebr.retire(tid, node);
        }
    }

    pub(crate) fn bump_ops(&self, tid: usize) {
        self.ops_done[tid].fetch_add(1, Relaxed);
    }

    /// Total completed operations (volatile; for workloads and tests).
    pub fn ops_completed(&self) -> u64 {
        self.ops_done.iter().map(|c| c.load(Relaxed)).sum()
    }

    /// **resolve** (Figure 3, lines 20–27): reports the status of the
    /// calling thread's most recently prepared operation.
    ///
    /// Idempotent and total: call it any number of times, from any state,
    /// including immediately after recovery from a crash.
    pub fn resolve(&self, h: ThreadHandle) -> Resolved {
        let tid = h.slot();
        let x = self.core.pool.load(self.x_addr(tid)); // inspect X[TID]
        if tag::has(x, tag::ENQ_PREP) {
            // line 21-22
            let (value, resp) = self.resolve_enqueue(x);
            Resolved { op: Some(ResolvedOp::Enqueue(value)), resp }
        } else if tag::has(x, tag::DEQ_PREP) {
            // line 23-25
            let resp = self.resolve_dequeue(tid, x);
            Resolved { op: Some(ResolvedOp::Dequeue), resp }
        } else {
            // line 26-27: no operation was prepared
            Resolved { op: None, resp: None }
        }
    }

    /// **resolve-enqueue** (Figure 3, lines 28–31).
    fn resolve_enqueue(&self, x: u64) -> (u64, Option<QueueResp>) {
        let node = tag::addr_of(x);
        let value = self.core.pool.load(node.offset(F_VALUE));
        if tag::has(x, tag::ENQ_COMPL) {
            // enqueue was prepared and took effect (line 29)
            (value, Some(QueueResp::Ok))
        } else {
            // enqueue was prepared and did not take effect (line 31)
            (value, None)
        }
    }

    /// **resolve-dequeue** (Figure 4, lines 56–63).
    fn resolve_dequeue(&self, tid: usize, x: u64) -> Option<QueueResp> {
        let ptr = tag::addr_of(x);
        if ptr.is_null() {
            if tag::has(x, tag::EMPTY) {
                // dequeue took effect on an empty queue (lines 58-59)
                Some(QueueResp::Empty)
            } else {
                // prepared but did not take effect (lines 56-57)
                None
            }
        } else {
            // X holds the predecessor of the node this thread tried to
            // claim (written at lines 47-48).
            let next = tag::addr_of(self.core.pool.load(ptr.offset(F_NEXT)));
            if next.is_null() {
                // The claimed node's linkage never persisted, so the claim
                // cannot have persisted either (the paper's flush order
                // guarantees next is persisted before any claim on it).
                return None;
            }
            if self.core.pool.load(next.offset(F_DEQ_TID)) == tid as u64 {
                // dequeue took effect on a non-empty queue (lines 60-61)
                Some(QueueResp::Value(self.core.pool.load(next.offset(F_VALUE))))
            } else {
                // crashed between announcing the predecessor and the claim
                // (lines 62-63); the node may be claimed by someone else,
                // by this thread's *non-detectable* dequeue, or unclaimed.
                None
            }
        }
    }

    /// Read-only front probe through the shared structure: walks from the
    /// head pointer past claimed nodes to the first live one and returns
    /// its value. This is the single-instance read path the replicated
    /// layer's replica-local reads are benchmarked against — every call
    /// traverses the same shared head line all writers contend on.
    pub fn peek_front(&self, h: ThreadHandle) -> Option<u64> {
        let tid = h.slot();
        let _guard = self.pin(tid);
        let mut cur = tag::addr_of(self.core.pool.load(self.head_addr()));
        loop {
            let next = tag::addr_of(self.core.pool.load(cur.offset(F_NEXT)));
            if next.is_null() {
                return None;
            }
            if self.core.pool.load(next.offset(F_DEQ_TID)) == NO_DEQUEUER {
                return Some(self.core.pool.load(next.offset(F_VALUE)));
            }
            cur = next;
        }
    }

    /// Volatile inspection helper: the values currently in the queue, head
    /// to tail (test/debug only — not atomic with respect to concurrent
    /// operations).
    pub fn snapshot_values(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = tag::addr_of(self.core.pool.peek(self.head_addr()));
        loop {
            let next = tag::addr_of(self.core.pool.peek(cur.offset(F_NEXT)));
            if next.is_null() {
                break;
            }
            // A marked successor has been dequeued already.
            if self.core.pool.peek(next.offset(F_DEQ_TID)) == NO_DEQUEUER {
                out.push(self.core.pool.peek(next.offset(F_VALUE)));
            }
            cur = next;
        }
        out
    }
}

impl<M: Memory> fmt::Debug for DssQueue<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DssQueue")
            .field("nthreads", &self.core.nthreads)
            .field("total_nodes", &self.nodes.total_nodes())
            .finish_non_exhaustive()
    }
}
