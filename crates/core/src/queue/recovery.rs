//! Post-crash recovery (paper Appendix A, Figure 6) and its independent
//! per-thread variant (§3.3), plus the leak-preventing allocator rebuild
//! the evaluation section describes.

use std::collections::HashSet;

use dss_pmem::{tag, Memory, PAddr, ThreadHandle};

use super::{DssQueue, F_DEQ_TID, F_NEXT, NO_DEQUEUER};

impl<M: Memory> DssQueue<M> {
    /// Walks the linked list from `start`, returning every reachable node.
    fn reachable_from(&self, start: PAddr) -> Vec<PAddr> {
        let mut out = Vec::new();
        let mut cur = start;
        loop {
            out.push(cur);
            let next = tag::addr_of(self.core.pool.load(cur.offset(F_NEXT)));
            if next.is_null() {
                return out;
            }
            cur = next;
        }
    }

    /// **recovery()** (Figure 6, restructured through the registry): run
    /// after [`PmemPool::crash`](dss_pmem::PmemPool::crash) and before
    /// application threads resume. Figure 6's centralized "for each
    /// thread, repair `X[i]`" loop becomes *adopt every ORPHANED slot,
    /// then resolve each*:
    ///
    /// 1. Marks the crash boundary in the registry
    ///    ([`begin_recovery`](Self::begin_recovery)): every slot LIVE at
    ///    the crash is now ORPHANED.
    /// 2. Recomputes and persists the `tail` pointer (lines 65–66), then
    ///    advances and persists the `head` pointer to the last *marked*
    ///    (already dequeued) node (lines 67–69).
    /// 3. Adopts each orphaned slot in ascending order — inheriting its
    ///    EBR state — and completes its detectability word: `X[i]`
    ///    holding `ENQ_PREP` without `ENQ_COMPL` whose node either is
    ///    still in the list, or left it already marked, gains `ENQ_COMPL`
    ///    (lines 70–76).
    ///
    /// Returns the adopted handles (ascending slot order). Pre-crash
    /// `ThreadHandle`s remain usable for operations — adoption re-LIVEs
    /// the slot rather than freeing it — so the paper §2's
    /// recover-under-the-same-ID model still holds for callers that kept
    /// their handles.
    ///
    /// Idempotent: running it twice (e.g. after a crash *during*
    /// recovery) is safe, which the tests exercise; the second pass
    /// adopts nothing and repairs nothing.
    pub fn recover(&self) -> Vec<ThreadHandle> {
        // The adopt-then-repair driver is the core's; the queue supplies
        // its shared-state repair (lines 64–69) and per-slot X repair
        // (lines 70–76). Slots that were FREE at the crash hold no pending
        // announce, so adopting only the orphans covers exactly the X
        // entries Figure 6's full sweep would repair.
        self.core.recover_adopting(
            || {
                // line 64: AllNodes := nodes reachable from head
                let old_head = tag::addr_of(self.core.pool.load(self.head_addr()));
                let chain = self.reachable_from(old_head);
                let all_nodes: HashSet<PAddr> = chain.iter().copied().collect();

                // lines 65–66: tail := last reachable node
                let last = *chain.last().expect("chain contains at least head");
                self.core.pool.store(self.tail_addr(), last.to_word());
                self.core.pool.flush(self.tail_addr());

                // lines 67–69: head := last marked node reachable from oldHead
                let last_marked = chain
                    .iter()
                    .copied()
                    .filter(|n| self.core.pool.load(n.offset(F_DEQ_TID)) != NO_DEQUEUER)
                    .last();
                if let Some(m) = last_marked {
                    self.core.pool.store(self.head_addr(), m.to_word());
                }
                self.core.pool.flush(self.head_addr());
                all_nodes
            },
            |slot, all_nodes| self.recover_x_entry(slot, all_nodes),
        )
    }

    /// The pre-registry centralized recovery (Figure 6 verbatim): repairs
    /// tail, head, and **every** `X[i]` by index, with no registry
    /// transitions. Kept only as the reference implementation for the
    /// parity test that shows the registry-driven [`recover`](Self::recover)
    /// produces byte-identical resolved responses.
    #[doc(hidden)]
    pub fn recover_centralized(&self) {
        // line 64: AllNodes := nodes reachable from head
        let old_head = tag::addr_of(self.core.pool.load(self.head_addr()));
        let chain = self.reachable_from(old_head);
        let all_nodes: HashSet<PAddr> = chain.iter().copied().collect();

        // lines 65–66: tail := last reachable node
        let last = *chain.last().expect("chain contains at least head");
        self.core.pool.store(self.tail_addr(), last.to_word());
        self.core.pool.flush(self.tail_addr());

        // lines 67–69: head := last marked node reachable from oldHead
        let last_marked = chain
            .iter()
            .copied()
            .filter(|n| self.core.pool.load(n.offset(F_DEQ_TID)) != NO_DEQUEUER)
            .last();
        if let Some(m) = last_marked {
            self.core.pool.store(self.head_addr(), m.to_word());
        }
        self.core.pool.flush(self.head_addr());

        // lines 70–76: complete detectability state of effective enqueues.
        for i in 0..self.nthreads() {
            self.recover_x_entry(i, &all_nodes);
        }
        self.core.pool.drain();
    }

    /// Independent per-slot recovery (§3.3): the handle's owner repairs
    /// only its own `X` entry by scanning the list itself; no centralized
    /// phase, and with it "the last trace of auxiliary state" disappears.
    ///
    /// Two callers use this: a thread that survived the crash with its
    /// own handle (its slot never went through adoption — the cheap
    /// fully-independent path), and an adopter finishing what
    /// [`adopt`](Self::adopt) started on a dead thread's behalf.
    ///
    /// The queue's head and tail pointers are *not* repaired here — the
    /// MS-queue helping paths advance a lagging tail, and the dequeue path
    /// advances a head that points at marked nodes, so ordinary operations
    /// restore them lazily.
    pub fn recover_one(&self, h: ThreadHandle) {
        self.core.recover_one_with(
            h,
            || {
                let old_head = tag::addr_of(self.core.pool.load(self.head_addr()));
                self.reachable_from(old_head).into_iter().collect::<HashSet<PAddr>>()
            },
            |slot, all_nodes| self.recover_x_entry(slot, all_nodes),
        );
    }

    fn recover_x_entry(&self, i: usize, all_nodes: &HashSet<PAddr>) {
        let xa = self.x_addr(i);
        let x = self.core.pool.load(xa);
        if !tag::has(x, tag::ENQ_PREP) || tag::has(x, tag::ENQ_COMPL) {
            return;
        }
        let d = tag::addr_of(x);
        if d.is_null() {
            return;
        }
        let effective = if all_nodes.contains(&d) {
            // lines 71–74: enqueued and still in the linked list
            true
        } else {
            // lines 75–76: enqueued and no longer in the list — it must
            // have been dequeued, i.e. marked
            self.core.pool.load(d.offset(F_DEQ_TID)) != NO_DEQUEUER
        };
        if effective {
            self.core.complete(i, tag::set(x, tag::ENQ_COMPL));
        }
    }

    /// Rebuilds the volatile allocator and reclamation state after a
    /// crash, preventing the memory leaks the paper's §4 mentions (e.g. "a
    /// crash in prep-enqueue").
    ///
    /// A node survives (stays allocated) iff it is reachable from the
    /// head, or referenced by some thread's detectability word `X[i]`
    /// (directly or as that node's successor — `resolve` may still
    /// dereference both). Everything else returns to the free lists.
    ///
    /// Call after [`recover`](Self::recover) (or after every slot's
    /// [`recover_one`](Self::recover_one)); threads may resolve
    /// before or after, since `X`-referenced nodes are preserved.
    pub fn rebuild_allocator(&self) {
        let mut live: Vec<PAddr> = Vec::new();
        let head = tag::addr_of(self.core.pool.load(self.head_addr()));
        live.extend(self.reachable_from(head));
        live.extend(self.x_referenced_nodes());
        self.nodes.rebuild(live);
        // The EBR limbo lists are volatile and reference pre-crash nodes
        // that rebuild() has already re-classified; drop them wholesale.
        self.core.ebr.reset();
    }
}
