//! Enqueue and dequeue operations (paper Figures 3 and 4).
//!
//! Line numbers in comments refer to the paper's pseudocode. The
//! non-detectable operations are, per §3.1/§3.2, the detectable ones with
//! every access to `X` omitted, and with the dequeue claim combining the
//! thread ID "with another special tag" (`NONDET_DEQ`) so detection never
//! confuses a non-detectable claim with a detectable one.

use dss_pmem::{tag, Memory, PAddr, ThreadHandle};
use dss_spec::types::QueueResp;

use super::{DssQueue, QueueFull, F_DEQ_TID, F_NEXT, F_VALUE, NO_DEQUEUER};

impl<M: Memory> DssQueue<M> {
    /// **prep-enqueue(val)** (Figure 3, lines 1–4): allocates and persists
    /// a node holding `val`, then announces it in `X[tid]` with
    /// `ENQ_PREP`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the pre-allocated node pool is exhausted
    /// (in which case `X[tid]` is left unchanged).
    pub fn prep_enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), QueueFull> {
        let tid = h.slot();
        let node = self.alloc_node(tid)?;
        // line 1: new Node(val) — init next = NULL, deqThreadID = −1
        self.core.pool.store(node.offset(F_VALUE), val);
        self.core.pool.store(node.offset(F_NEXT), PAddr::NULL.to_word());
        self.core.pool.store(node.offset(F_DEQ_TID), NO_DEQUEUER);
        self.flush_node(node); // line 2
                               // Ordering point: the announce below must not persist ahead of the
                               // node it names (writeback is per-word, so X[tid] could otherwise
                               // survive a crash pointing at an unwritten node). A targeted drain
                               // of the node's own lines is enough.
        self.drain_node(node);
        // lines 3–4 + the durable-before-return drain (DetectableCore).
        self.core.announce(tid, tag::set(node.to_word(), tag::ENQ_PREP));
        Ok(())
    }

    /// **exec-enqueue()** (Figure 3, lines 5–19): links the prepared node
    /// at the tail, records completion in `X[tid]`, and swings the tail.
    ///
    /// # Panics
    ///
    /// Panics if no enqueue is currently prepared for `tid` (Axiom 2's
    /// precondition; the application drives the prep/exec protocol).
    pub fn exec_enqueue(&self, h: ThreadHandle) {
        let tid = h.slot();
        let _guard = self.pin(tid);
        let xa = self.x_addr(tid);
        let x = self.core.pool.load(xa); // line 5
        assert!(
            tag::has(x, tag::ENQ_PREP),
            "exec-enqueue without a prepared enqueue (X[{tid}] = {x:#x})"
        );
        let node = tag::addr_of(x);
        let mut bo = self.new_backoff();
        loop {
            let last_w = self.core.pool.load(self.tail_addr()); // line 7
            let last = tag::addr_of(last_w);
            let next_w = self.core.pool.load(last.offset(F_NEXT)); // line 8
            if self.core.pool.load(self.tail_addr()) == last_w {
                // line 9
                if tag::addr_of(next_w).is_null() {
                    // line 10: at tail
                    // Ordering point: the announce (and the node it names)
                    // must be persistent before the link can take effect.
                    self.core.pool.drain_line(xa);
                    if self
                        .core
                        .pool
                        .cas(last.offset(F_NEXT), PAddr::NULL.to_word(), node.to_word())
                        .is_ok()
                    {
                        // line 11 succeeded
                        self.core.pool.flush(last.offset(F_NEXT)); // line 12
                                                                   // Ordering point: the completion mark must not
                                                                   // persist ahead of the link it certifies.
                        self.core.pool.drain_line(last.offset(F_NEXT));
                        // lines 13–14: the completion mark (DetectableCore).
                        self.core.complete(tid, tag::set(x, tag::ENQ_COMPL));
                        let _ = self.core.pool.cas(self.tail_addr(), last_w, node.to_word()); // line 15
                        self.bump_ops(tid);
                        self.core.pool.drain();
                        return;
                    }
                } else {
                    // lines 17–19: help another enqueuing thread
                    self.core.pool.flush(last.offset(F_NEXT)); // line 18
                                                               // The tail must not persist ahead of the link it follows.
                    self.core.pool.drain_line(last.offset(F_NEXT));
                    let _ = self.core.pool.cas(self.tail_addr(), last_w, next_w);
                    // line 19
                }
            }
            // Reaching here means another thread won the race this
            // iteration; back off before colliding with it again.
            bo.spin();
        }
    }

    /// Non-detectable **enqueue(val)**: `prep-enqueue` + `exec-enqueue`
    /// with every access to `X` omitted (§3.1).
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the node pool is exhausted.
    pub fn enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), QueueFull> {
        let tid = h.slot();
        // Allocate and initialize before pinning: a pinned thread blocks
        // epoch advancement, and allocation may need to reclaim.
        let node = self.alloc_node(tid)?;
        self.core.pool.store(node.offset(F_VALUE), val);
        self.core.pool.store(node.offset(F_NEXT), PAddr::NULL.to_word());
        self.core.pool.store(node.offset(F_DEQ_TID), NO_DEQUEUER);
        self.flush_node(node);
        let _guard = self.pin(tid);
        let mut bo = self.new_backoff();
        loop {
            let last_w = self.core.pool.load(self.tail_addr());
            let last = tag::addr_of(last_w);
            let next_w = self.core.pool.load(last.offset(F_NEXT));
            if self.core.pool.load(self.tail_addr()) == last_w {
                if tag::addr_of(next_w).is_null() {
                    // The node must be persistent before the link can be.
                    self.drain_node(node);
                    if self
                        .core
                        .pool
                        .cas(last.offset(F_NEXT), PAddr::NULL.to_word(), node.to_word())
                        .is_ok()
                    {
                        self.core.pool.flush(last.offset(F_NEXT));
                        self.core.pool.drain_line(last.offset(F_NEXT));
                        let _ = self.core.pool.cas(self.tail_addr(), last_w, node.to_word());
                        self.bump_ops(tid);
                        self.core.pool.drain();
                        return Ok(());
                    }
                } else {
                    self.core.pool.flush(last.offset(F_NEXT));
                    self.core.pool.drain_line(last.offset(F_NEXT));
                    let _ = self.core.pool.cas(self.tail_addr(), last_w, next_w);
                }
            }
            bo.spin();
        }
    }

    /// **prep-dequeue()** (Figure 4, lines 32–33): announces the intent to
    /// dequeue by writing `DEQ_PREP` (over a NULL pointer) into `X[tid]`.
    pub fn prep_dequeue(&self, h: ThreadHandle) {
        // lines 32–33 + the durable-before-return drain (DetectableCore).
        self.core.announce(h.slot(), tag::DEQ_PREP);
    }

    /// **exec-dequeue()** (Figure 4, lines 34–55): claims the node after
    /// the sentinel by CAS-ing the thread ID into its `deqThreadID`,
    /// returning its value, or [`QueueResp::Empty`] on an empty queue.
    ///
    /// The predecessor pointer written to `X[tid]` at lines 47–48 before
    /// the claim is what makes the operation detectable.
    pub fn exec_dequeue(&self, h: ThreadHandle) -> QueueResp {
        let tid = h.slot();
        let _guard = self.pin(tid);
        let xa = self.x_addr(tid);
        let elide = self.backoff_enabled();
        let mut bo = self.new_backoff();
        // The announce word this call last wrote to X[tid] (0 = none). Only
        // this thread writes X[tid], so under contention management a retry
        // may skip re-announcing the same predecessor it already persisted.
        let mut announced = 0u64;
        loop {
            let first_w = self.core.pool.load(self.head_addr()); // line 35
            let last_w = self.core.pool.load(self.tail_addr()); // line 36
            let first = tag::addr_of(first_w);
            let next_w = self.core.pool.load(first.offset(F_NEXT)); // line 37
            let next = tag::addr_of(next_w);
            if self.core.pool.load(self.head_addr()) != first_w {
                bo.spin();
                continue; // line 38 failed
            }
            if first_w == last_w {
                // line 39: empty queue (or lagging tail)
                if next.is_null() {
                    // lines 40–43: nothing appended at tail; the EMPTY
                    // mark is this path's completion mark.
                    self.core.complete(tid, tag::DEQ_PREP | tag::EMPTY); // lines 41–42
                    self.bump_ops(tid);
                    self.core.pool.drain();
                    return QueueResp::Empty; // line 43
                }
                self.core.pool.flush(first.offset(F_NEXT)); // line 44 (first == last)
                self.core.pool.drain_line(first.offset(F_NEXT));
                let _ = self.core.pool.cas(self.tail_addr(), last_w, next_w); // line 45
            } else {
                // lines 46–55: non-empty queue
                // save predecessor of the node to be dequeued
                let announce = tag::set(first.to_word(), tag::DEQ_PREP);
                if !elide || announced != announce {
                    self.core.pool.store(xa, announce); // line 47
                    self.core.pool.flush(xa); // line 48
                    announced = announce;
                }
                // Ordering point: the announced predecessor must be
                // persistent before a claim on its successor can be —
                // resolve interprets the claim through it.
                self.core.pool.drain_line(xa);
                if self.core.pool.cas(next.offset(F_DEQ_TID), NO_DEQUEUER, tid as u64).is_ok() {
                    // line 49 succeeded
                    self.core.pool.flush(next.offset(F_DEQ_TID)); // line 50
                                                                  // The head must not persist past an unpersisted claim.
                    self.core.pool.drain_line(next.offset(F_DEQ_TID));
                    if self.core.pool.cas(self.head_addr(), first_w, next_w).is_ok() {
                        // line 51
                        self.retire_node(tid, first);
                    }
                    let val = self.core.pool.load(next.offset(F_VALUE)); // line 52
                    self.bump_ops(tid);
                    self.core.pool.drain();
                    return QueueResp::Value(val);
                } else if self.core.pool.load(self.head_addr()) == first_w {
                    // lines 53–55: help another dequeuing thread
                    self.core.pool.flush(next.offset(F_DEQ_TID)); // line 54
                    self.core.pool.drain_line(next.offset(F_DEQ_TID));
                    if self.core.pool.cas(self.head_addr(), first_w, next_w).is_ok() {
                        // line 55
                        self.retire_node(tid, first);
                    }
                }
            }
            bo.spin();
        }
    }

    /// Non-detectable **dequeue()**: `prep-dequeue` + `exec-dequeue` with
    /// every access to `X` omitted, claiming nodes with
    /// `tid | NONDET_DEQ` (§3.2).
    pub fn dequeue(&self, h: ThreadHandle) -> QueueResp {
        let tid = h.slot();
        let _guard = self.pin(tid);
        let mut bo = self.new_backoff();
        loop {
            let first_w = self.core.pool.load(self.head_addr());
            let last_w = self.core.pool.load(self.tail_addr());
            let first = tag::addr_of(first_w);
            let next_w = self.core.pool.load(first.offset(F_NEXT));
            let next = tag::addr_of(next_w);
            if self.core.pool.load(self.head_addr()) != first_w {
                bo.spin();
                continue;
            }
            if first_w == last_w {
                if next.is_null() {
                    self.bump_ops(tid);
                    self.core.pool.drain();
                    return QueueResp::Empty;
                }
                self.core.pool.flush(first.offset(F_NEXT));
                self.core.pool.drain_line(first.offset(F_NEXT));
                let _ = self.core.pool.cas(self.tail_addr(), last_w, next_w);
            } else {
                if self
                    .core
                    .pool
                    .cas(next.offset(F_DEQ_TID), NO_DEQUEUER, tid as u64 | tag::NONDET_DEQ)
                    .is_ok()
                {
                    self.core.pool.flush(next.offset(F_DEQ_TID));
                    self.core.pool.drain_line(next.offset(F_DEQ_TID));
                    if self.core.pool.cas(self.head_addr(), first_w, next_w).is_ok() {
                        self.retire_node(tid, first);
                    }
                    let val = self.core.pool.load(next.offset(F_VALUE));
                    self.bump_ops(tid);
                    self.core.pool.drain();
                    return QueueResp::Value(val);
                } else if self.core.pool.load(self.head_addr()) == first_w {
                    self.core.pool.flush(next.offset(F_DEQ_TID));
                    self.core.pool.drain_line(next.offset(F_DEQ_TID));
                    if self.core.pool.cas(self.head_addr(), first_w, next_w).is_ok() {
                        self.retire_node(tid, first);
                    }
                }
            }
            bo.spin();
        }
    }
}
