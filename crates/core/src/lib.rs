//! Detectable recoverable shared objects on simulated persistent memory.
//!
//! This crate implements the algorithmic contribution of Li & Golab,
//! *Detectable Sequential Specifications for Recoverable Shared Objects*
//! (DISC 2021):
//!
//! * [`DssQueue`] — the paper's §3 **DSS queue**: a lock-free, strictly
//!   linearizable, detectable recoverable MPMC FIFO queue derived from the
//!   Michael–Scott queue and Friedman et al.'s durable queue. Both the
//!   centralized recovery procedure (Appendix A, Figure 6) and the
//!   independent per-thread recovery variant (§3.3) are provided.
//! * [`DssStack`] — the same DSS recipe applied to a Treiber stack,
//!   showing the methodology generalizes beyond the paper's queue.
//! * [`DetectableRegister`] — a bespoke implementation of
//!   `D⟨read/write register⟩`, the object of the paper's Figure 2.
//! * [`DetectableCas`] — a bespoke implementation of `D⟨CAS⟩`; together
//!   with the register it demonstrates the application-managed nesting
//!   story of §2.2 ("`D⟨queue⟩` can be constructed using implementations of
//!   `D⟨read/write register⟩` and `D⟨CAS⟩`").
//! * [`DetectableMap`] — the same recipe applied to a bucket-chained hash
//!   map with crash-atomic growth: the "new object family" built on the
//!   extracted [`DetectableCore`] skeleton.
//! * [`Universal`] — a recoverable, detectable universal construction in
//!   the style of Herlihy (1991) / Berryhill et al. (2016), yielding
//!   `D⟨T⟩` for *any* [`SequentialSpec`](dss_spec::SequentialSpec) (§2.2's
//!   computability remark).
//!
//! Everything runs against the [`dss_pmem`] simulator: explicit flushes,
//! volatile-cache crash semantics, and tag bits borrowed from pointers'
//! high bits exactly as the paper describes.
//!
//! # Quick start
//!
//! ```
//! use dss_core::{DssQueue, Resolved, ResolvedOp};
//! use dss_spec::types::QueueResp;
//!
//! let q = DssQueue::new(2, 64); // 2 thread slots, 64 nodes per thread
//! // Each thread claims a slot from the persistent registry:
//! let h0 = q.register_thread().unwrap();
//! let h1 = q.register_thread().unwrap();
//! // Thread 0 performs a detectable enqueue:
//! q.prep_enqueue(h0, 42).unwrap();
//! q.exec_enqueue(h0);
//! // Thread 0 can ask what happened (e.g. after a crash):
//! assert_eq!(
//!     q.resolve(h0),
//!     dss_core::Resolved {
//!         op: Some(dss_core::ResolvedOp::Enqueue(42)),
//!         resp: Some(QueueResp::Ok),
//!     }
//! );
//! // Thread 1 dequeues it (non-detectably):
//! assert_eq!(q.dequeue(h1), QueueResp::Value(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cas;
mod detect;
mod map;
mod queue;
mod register;
mod stack;
mod universal;

pub use cas::{DetectableCas, ResolvedCas, KIND_DETECTABLE_CAS};
pub use detect::DetectableCore;
pub use map::{DetectableMap, ResolvedMap, KIND_DETECTABLE_MAP, MAX_LEVELS};
pub use queue::{
    CombiningQueue, DssQueue, QueueFull, ReplicatedQueue, Resolved, ResolvedOp, DEFAULT_REPLICAS,
    KIND_DSS_QUEUE, KIND_DSS_QUEUE_COMBINING, KIND_DSS_QUEUE_REPLICATED, REPLICATED_LOG_CAP,
};
pub use register::{DetectableRegister, KIND_DETECTABLE_REGISTER};
pub use stack::{DssStack, StackFull, StackResolved, StackResolvedOp, KIND_DSS_STACK};
pub use universal::{OpWords, UniResolved, Universal, KIND_UNIVERSAL};
