//! Differential tests for the replicated layer: a volatile replica is
//! nothing but a deterministic function of the durable op log, so after
//! `advance_to(committed_seq)` its contents must be byte-equal to a
//! single-instance queue that replayed the same operation script — under
//! every combination of the simulator's writeback knobs (coalescing ×
//! per-address drains), both placement policies, and with either
//! single-instance execution layer as the oracle (the plain CAS-racing
//! queue and the flat-combining queue). A crash sweep then kills the
//! leased appender mid-batch at every instrumented persistence point and
//! checks that a survivor adopting the dead slot sees replicas that
//! rebuild to exactly the committed prefix.

use proptest::prelude::*;

use dss_core::{CombiningQueue, DssQueue, QueueFull, ReplicatedQueue, Resolved, ResolvedOp};
use dss_pmem::{FlushGranularity, PlacementPolicy, PmemPool, ThreadHandle, WritebackAdversary};
use dss_spec::types::QueueResp;
use std::panic::{catch_unwind, AssertUnwindSafe};

const NTHREADS: usize = 3;
const NODES_PER_THREAD: u64 = 64;

/// One scripted operation (values stay small so collisions across
/// enqueues are common — the comparison is positional, not by identity).
#[derive(Clone, Debug)]
enum Op {
    Enq(u64),
    Deq,
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Two enqueue branches tilt the mix toward growth so replicas carry
    // real content by the end of most scripts.
    prop_oneof![(1u64..50).prop_map(Op::Enq), (50u64..100).prop_map(Op::Enq), Just(Op::Deq),]
}

/// The single-instance oracle: whichever execution layer the condition
/// picks, replaying the identical script on its own pool.
enum Oracle {
    Plain(DssQueue, ThreadHandle),
    Combining(CombiningQueue, ThreadHandle),
}

impl Oracle {
    fn new(combining: bool) -> Self {
        if combining {
            let q = CombiningQueue::new(NTHREADS, NODES_PER_THREAD);
            let h = q.register_thread().unwrap();
            Oracle::Combining(q, h)
        } else {
            let q = DssQueue::new(NTHREADS, NODES_PER_THREAD);
            let h = q.register_thread().unwrap();
            Oracle::Plain(q, h)
        }
    }

    fn enqueue(&self, val: u64) -> Result<(), QueueFull> {
        match self {
            Oracle::Plain(q, h) => q.enqueue(*h, val),
            Oracle::Combining(q, h) => q.enqueue(*h, val),
        }
    }

    fn dequeue(&self) -> QueueResp {
        match self {
            Oracle::Plain(q, h) => q.dequeue(*h),
            Oracle::Combining(q, h) => q.dequeue(*h),
        }
    }

    fn snapshot_values(&self) -> Vec<u64> {
        match self {
            Oracle::Plain(q, _) => q.snapshot_values(),
            Oracle::Combining(q, _) => q.snapshot_values(),
        }
    }
}

proptest! {
    /// Replayed scripts agree op-for-op with the oracle, and every
    /// replica caught up to the committed seq holds exactly the oracle's
    /// final contents.
    #[test]
    fn replicas_match_single_instance_replay(
        script in prop::collection::vec(arb_op(), 1..120),
        nreplicas in 1usize..4,
        coalesce in proptest::bool::ANY,
        per_addr in proptest::bool::ANY,
        combining in proptest::bool::ANY,
        sharded in proptest::bool::ANY,
    ) {
        let policy = if sharded { PlacementPolicy::Sharded } else { PlacementPolicy::Interleave };
        let q = ReplicatedQueue::<PmemPool>::new_configured(
            NTHREADS, NODES_PER_THREAD, nreplicas, policy, FlushGranularity::Line,
        );
        q.pool().set_coalescing(coalesce);
        q.pool().set_per_address_drains(per_addr);
        let h = q.register_thread().unwrap();

        let oracle = Oracle::new(combining);

        for (i, op) in script.iter().enumerate() {
            match op {
                Op::Enq(v) => {
                    let (a, b) = (q.enqueue(h, *v), oracle.enqueue(*v));
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "op {}: admission disagrees", i);
                }
                Op::Deq => {
                    let (a, b) = (q.dequeue(h), oracle.dequeue());
                    prop_assert_eq!(a, b, "op {}: dequeue response disagrees", i);
                }
            }
        }

        let expect = oracle.snapshot_values();
        prop_assert_eq!(&q.snapshot_values(), &expect, "durable contents diverged");
        let committed = q.committed_seq();
        for r in 0..q.nreplicas() {
            q.advance_to(r, committed);
            prop_assert_eq!(
                &q.replica_values(r), &expect,
                "replica {} disagrees with the single-instance replay \
                 (coalesce={}, per_addr={}, combining={}, policy={:?})",
                r, coalesce, per_addr, combining, policy
            );
            prop_assert_eq!(q.replica_applied(r), committed);
        }
    }
}

/// The appender dies mid-batch at every instrumented persistence point
/// (both writeback adversaries); a survivor adopts the dead slot via the
/// §3.3 single-slot path, resolves the interrupted announce, and every
/// replica — rebuilt purely by replaying the committed log prefix — must
/// equal the durable contents, before and after the survivor keeps
/// operating through the stale-lease steal.
#[test]
fn appender_killed_mid_batch_survivor_adopts_and_replicas_agree() {
    for adversary in [WritebackAdversary::All, WritebackAdversary::None] {
        for k in 1..=60u64 {
            let q = ReplicatedQueue::new(2, 16);
            let h0 = q.register_thread().unwrap();
            for v in [1, 2, 3] {
                q.enqueue(h0, v).unwrap();
            }
            q.prep_enqueue(h0, 9).unwrap();
            q.pool().arm_crash_after(k);
            let died = catch_unwind(AssertUnwindSafe(|| q.exec_enqueue(h0))).is_err();
            q.pool().disarm_crash();
            if !died {
                // The sweep walked past the batch's last persistence
                // point; later k values only repeat this completion.
                break;
            }
            q.pool().crash(&adversary);

            q.begin_recovery();
            let mine = q.adopt(h0.slot()).expect("the dead appender's slot is orphaned");
            q.recover_one(mine);
            q.rebuild_allocator();

            let expect = match q.resolve(mine) {
                Resolved { op: Some(ResolvedOp::Enqueue(9)), resp: Some(QueueResp::Ok) } => {
                    vec![1, 2, 3, 9]
                }
                Resolved { op: Some(ResolvedOp::Enqueue(9)), resp: None } => vec![1, 2, 3],
                other => panic!("{adversary:?} k={k}: unexpected resolution {other:?}"),
            };
            assert_eq!(q.snapshot_values(), expect, "{adversary:?} k={k}");
            let committed = q.committed_seq();
            for r in 0..q.nreplicas() {
                q.advance_to(r, committed);
                assert_eq!(
                    q.replica_values(r),
                    expect,
                    "{adversary:?} k={k}: replica {r} diverged after recovery-by-replay"
                );
                assert_eq!(q.replica_applied(r), committed, "{adversary:?} k={k}");
            }

            // The survivor keeps going through the adopted slot: its
            // first exec steals the lease the dead appender still holds
            // durably, and the replicas track the new committed prefix.
            q.enqueue(mine, 10).unwrap();
            assert_eq!(q.dequeue(mine), QueueResp::Value(expect[0]), "{adversary:?} k={k}");
            let mut after: Vec<u64> = expect[1..].to_vec();
            after.push(10);
            let committed = q.committed_seq();
            for r in 0..q.nreplicas() {
                q.advance_to(r, committed);
                assert_eq!(
                    q.replica_values(r),
                    after,
                    "{adversary:?} k={k}: replica {r} diverged after the survivor continued"
                );
            }
        }
    }
}
