use dss_core::DetectableMap;
use dss_spec::types::KvResp;
use std::sync::{Arc, Barrier};

// Race threads on the FIRST insert of the same key, sliding their start
// offsets so one thread's find_entry(None) -> load(bucket head) window
// straddles another thread's successful prepend of the same key. If the
// map can create duplicate entry nodes for one key, a later update only
// reaches the first (newest) entry; snapshot() walks the whole chain and
// the stale duplicate overwrites the fresh value in the BTreeMap.
#[test]
fn first_insert_race_creates_duplicate_entries() {
    let nthreads = 4usize;
    for round in 0..30_000u64 {
        let m = Arc::new(DetectableMap::new(nthreads, 64, 4));
        let hs: Vec<_> = (0..nthreads).map(|_| m.register_thread().unwrap()).collect();
        let bar = Arc::new(Barrier::new(nthreads));
        let key = 7u64;
        let threads: Vec<_> = (0..nthreads)
            .map(|tid| {
                let m = Arc::clone(&m);
                let bar = Arc::clone(&bar);
                let h = hs[tid];
                std::thread::spawn(move || {
                    bar.wait();
                    // Slide each thread's start by a round- and tid-
                    // dependent number of spins to scan interleavings.
                    let spins = (round.wrapping_mul(2654435761).wrapping_add(tid as u64 * 977))
                        % 2000;
                    for _ in 0..spins {
                        std::hint::spin_loop();
                    }
                    m.put(h, key, tid as u64 + 1);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Now a single overwrite; both get and snapshot must agree.
        m.put(hs[0], key, 999);
        assert_eq!(m.get(hs[1], key), KvResp::Value(999), "round {round}");
        let snap = m.snapshot();
        assert_eq!(
            snap.get(&key),
            Some(&999),
            "round {round}: snapshot sees a stale duplicate entry"
        );
    }
}
