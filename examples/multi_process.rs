//! Multi-process recovery: a pool *file* crossing a real process death.
//!
//! The parent re-spawns this binary as a victim child. The child creates
//! a file-backed `DssQueue`, enqueues durably, then dies by SIGKILL in
//! the middle of a detectable enqueue — no destructors, no graceful
//! shutdown, nothing volatile survives. The parent then `attach`es the
//! pool file with **zero shared in-process state**, adopts the dead
//! process's registry slot, and resolves its interrupted operation.
//!
//! ```text
//! cargo run --example multi_process
//! ```

use std::error::Error;
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use dss::core::{DssQueue, Resolved, ResolvedOp};
use dss::pmem::CrashSignal;
use dss::spec::types::QueueResp;

/// The victim role: build a queue in a pool file, make some history
/// durable, then stop dead in the middle of an enqueue and wait to be
/// killed.
fn child(path: &str) -> Result<(), Box<dyn Error>> {
    let q = DssQueue::create(path, 2, 64)?;
    let h = q.register_thread()?;

    // Two fully durable enqueues: exec + a drain to write everything back.
    q.prep_enqueue(h, 1)?;
    q.exec_enqueue(h);
    q.prep_enqueue(h, 2)?;
    q.exec_enqueue(h);
    q.pool().drain();

    // A third enqueue, interrupted: the crash-point trap fires mid-exec,
    // after the announce in `X` is persisted but before the node is
    // linked, so only `resolve` can say what happened.
    q.prep_enqueue(h, 3)?;
    q.pool().arm_crash_after(4);
    std::panic::set_hook(Box::new(|_| {})); // silence the CrashSignal panic
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        q.exec_enqueue(h);
    }));
    assert!(
        r.as_ref().err().and_then(|p| p.downcast_ref::<CrashSignal>()).is_some(),
        "the armed crash point interrupts exec-enqueue"
    );

    // Tell the parent we are mid-operation, then park until SIGKILL. The
    // un-written-back tail of the enqueue exists only in this process's
    // volatile shadows; the kill destroys it for real.
    println!("READY");
    std::io::stdout().flush()?;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("--child") {
        return child(&argv[2]);
    }

    let path = std::env::temp_dir().join(format!("dss-example-{}.pool", std::process::id()));
    let path_s = path.to_str().ok_or("non-UTF-8 temp path")?.to_owned();

    // --- Spawn the victim and kill it mid-operation ----------------------
    let exe = std::env::current_exe()?;
    let mut victim =
        Command::new(exe).arg("--child").arg(&path_s).stdout(Stdio::piped()).spawn()?;
    let mut line = String::new();
    BufReader::new(victim.stdout.take().ok_or("victim stdout not captured")?)
        .read_line(&mut line)?;
    assert_eq!(line.trim(), "READY", "victim failed before reaching its crash point");
    victim.kill()?; // SIGKILL: no destructors, no flushes, no mercy
    victim.wait()?;
    println!("victim (pid {}) SIGKILLed mid-enqueue", victim.id());

    // --- Attach from a process that shares nothing with the victim -------
    // `attach` verifies the superblock and is itself a durable crash
    // boundary: every slot the dead process held is now ORPHANED.
    let q = DssQueue::attach(&path_s)?;
    let orphans = q.recover(); // Figure 6: adopt, then repair each slot
    q.rebuild_allocator();
    assert_eq!(orphans.len(), 1, "the victim held exactly one registry slot");
    let h = orphans[0];

    // --- Detection across the process boundary ---------------------------
    match q.resolve(h) {
        Resolved { op: Some(ResolvedOp::Enqueue(3)), resp: Some(QueueResp::Ok) } => {
            println!("the interrupted enqueue of 3 took effect before the kill");
            assert_eq!(q.snapshot_values(), vec![1, 2, 3]);
        }
        Resolved { op: Some(ResolvedOp::Enqueue(3)), resp: None } => {
            println!("the interrupted enqueue of 3 did NOT take effect; retrying exactly once");
            q.prep_enqueue(h, 3)?;
            q.exec_enqueue(h);
            assert_eq!(q.snapshot_values(), vec![1, 2, 3]);
        }
        other => unreachable!("the DSS forbids any other answer here: {other:?}"),
    }
    println!("queue recovered from the pool file = {:?}", q.snapshot_values());

    std::fs::remove_file(&path)?;
    println!("exactly-once semantics held across a real process death");
    Ok(())
}
