//! A crash-safe work scheduler: detectable dequeues prevent lost *and*
//! duplicated work.
//!
//! A dispatcher fills a recoverable queue with task IDs; worker threads
//! claim tasks with **detectable dequeues**. The machine crashes while
//! workers are mid-claim. After recovery, each worker's `resolve` answers
//! the critical question a bare durable queue cannot ("did my dequeue take
//! effect, and which task did it return?"), so every task is executed
//! exactly once: claimed-but-unprocessed tasks are identified and
//! finished, unclaimed ones remain queued for the next round.
//!
//! ```text
//! cargo run --example task_scheduler [seed]
//! ```

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use dss::core::{DssQueue, Resolved, ResolvedOp};
use dss::pmem::{CrashSignal, WritebackAdversary};
use dss::spec::types::QueueResp;

const WORKERS: usize = 4;
const TASKS: u64 = 30;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let queue = DssQueue::new(WORKERS, 256);
    // Worker `tid` owns registry slot `tid`: claimed in order up front.
    let hs: Vec<_> = (0..WORKERS).map(|_| queue.register_thread().unwrap()).collect();

    // The dispatcher enqueues tasks 1..=TASKS (task 0 would collide with
    // the NULL word convention, so IDs start at 1).
    for task in 1..=TASKS {
        queue.enqueue(hs[0], task).expect("pool sized");
    }
    println!("dispatched {TASKS} tasks");

    // Workers claim and process tasks until the crash. "Processing" is
    // recording the task in a per-worker done-list (the durable side
    // effect of a real worker).
    let done_lists: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = hs
            .iter()
            .enumerate()
            .map(|(tid, &h)| {
                let queue = &queue;
                scope.spawn(move || {
                    let crash_after =
                        15 + (seed.wrapping_mul(101).wrapping_add(tid as u64 * 57)) % 150;
                    queue.pool().arm_crash_after(crash_after);
                    let done = std::cell::RefCell::new(Vec::new());
                    let r = catch_unwind(AssertUnwindSafe(|| loop {
                        queue.prep_dequeue(h);
                        match queue.exec_dequeue(h) {
                            QueueResp::Value(task) => done.borrow_mut().push(task),
                            QueueResp::Empty => break,
                            QueueResp::Ok => unreachable!(),
                        }
                    }));
                    queue.pool().disarm_crash();
                    match r {
                        Ok(()) => {}
                        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => {}
                        Err(p) => std::panic::resume_unwind(p),
                    }
                    done.into_inner()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // --- Crash + recovery --------------------------------------------------
    queue.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });
    queue.recover();
    queue.rebuild_allocator();

    let mut completed: HashSet<u64> = done_lists.iter().flatten().copied().collect();
    println!("crash! {} tasks were completed before it", completed.len());

    // --- Detection: settle each worker's in-flight claim --------------------
    for (tid, &h) in hs.iter().enumerate() {
        match queue.resolve(h) {
            Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Value(task)) } => {
                // The claim landed but the worker never processed it:
                // without detectability this task would be LOST (it is no
                // longer in the queue, and no worker remembers it).
                if completed.insert(task) {
                    println!("worker {tid}: recovered orphaned claim on task {task}; finishing it");
                }
            }
            Resolved { op: Some(ResolvedOp::Dequeue), resp } => {
                println!("worker {tid}: in-flight dequeue had no effect ({resp:?})");
            }
            other => println!("worker {tid}: no dequeue in flight ({other:?})"),
        }
    }

    // --- Second round: drain what the crash left queued ----------------------
    loop {
        queue.prep_dequeue(hs[0]);
        match queue.exec_dequeue(hs[0]) {
            QueueResp::Value(task) => {
                assert!(completed.insert(task), "task {task} executed twice!");
            }
            QueueResp::Empty => break,
            QueueResp::Ok => unreachable!(),
        }
    }

    let mut all: Vec<u64> = completed.into_iter().collect();
    all.sort_unstable();
    assert_eq!(all, (1..=TASKS).collect::<Vec<_>>(), "every task exactly once");
    println!("ok: all {TASKS} tasks executed exactly once across the crash");
}
