//! A persistent bank ledger built on the DSS queue.
//!
//! The scenario the paper's introduction motivates: an application that
//! must decide "the correct redo and undo actions" itself, without
//! transactions. Tellers push transfer orders into a detectable
//! recoverable queue; a settlement thread drains it and applies transfers
//! to account balances. The machine crashes at a random point; after
//! recovery every teller uses `resolve` to decide whether its in-flight
//! order needs to be re-submitted — and every order settles **exactly
//! once**, which the example verifies by conservation of money.
//!
//! ```text
//! cargo run --example bank_ledger [seed]
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use dss::core::{DssQueue, Resolved, ResolvedOp};
use dss::pmem::{CrashSignal, WritebackAdversary};
use dss::spec::types::QueueResp;

const TELLERS: usize = 3;
const ORDERS_PER_TELLER: u64 = 40;
const ACCOUNTS: usize = 4;
const OPENING_BALANCE: i64 = 1_000;

/// A transfer order packed into a queue value: `amount` moves from
/// account `from` to account `to`. `uniq` (teller id and sequence number)
/// makes every order value distinct, which is also how an application
/// sidesteps the repeated-identical-operation ambiguity of §2.1.
fn pack(from: u64, to: u64, uniq: u64, amount: u64) -> u64 {
    (from << 40) | (to << 32) | (uniq << 16) | amount
}

fn unpack(v: u64) -> (usize, usize, i64) {
    (((v >> 40) & 0xff) as usize, ((v >> 32) & 0xff) as usize, (v & 0xffff) as i64)
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let queue = DssQueue::new(TELLERS, 512);
    // Claim every teller's registry slot on the main thread, in order, so
    // teller `tid` owns slot `tid`.
    let hs: Vec<_> = (0..TELLERS).map(|_| queue.register_thread().unwrap()).collect();

    // --- Phase 1: tellers submit orders until the crash ------------------
    let submitted: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = hs
            .iter()
            .enumerate()
            .map(|(tid, &h)| {
                let queue = &queue;
                scope.spawn(move || {
                    // Each teller dies after a pseudo-random number of
                    // memory operations — mid-submission somewhere.
                    let crash_after =
                        40 + (seed.wrapping_mul(31).wrapping_add(tid as u64 * 131)) % 300;
                    queue.pool().arm_crash_after(crash_after);
                    // Orders acknowledged before the crash: in a real
                    // deployment this is the teller's own durable journal;
                    // here a cell outside the unwind boundary plays that
                    // role.
                    let acked = std::cell::RefCell::new(Vec::new());
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        for i in 0..ORDERS_PER_TELLER {
                            let from = (tid as u64 + i) % ACCOUNTS as u64;
                            let to = (from + 1 + i % 3) % ACCOUNTS as u64;
                            let order = pack(from, to, (tid as u64) << 8 | i, 1 + i % 9);
                            queue.prep_enqueue(h, order).expect("pool sized");
                            queue.exec_enqueue(h);
                            acked.borrow_mut().push(order);
                        }
                    }));
                    queue.pool().disarm_crash();
                    match r {
                        Ok(()) => {}
                        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => {}
                        Err(p) => std::panic::resume_unwind(p),
                    }
                    acked.into_inner()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // --- The crash --------------------------------------------------------
    queue.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });
    queue.recover();
    queue.rebuild_allocator();
    println!("crash after partial submission; recovery complete");

    // --- Phase 2: detection + exactly-once resubmission -------------------
    // Each teller knows which orders were acknowledged before the crash
    // (they returned). The only ambiguous one is the in-flight order;
    // resolve settles it.
    let mut effective: Vec<u64> = submitted.iter().flatten().copied().collect();
    for (tid, &h) in hs.iter().enumerate() {
        match queue.resolve(h) {
            Resolved { op: Some(ResolvedOp::Enqueue(order)), resp: Some(QueueResp::Ok) } => {
                if !effective.contains(&order) {
                    println!("teller {tid}: in-flight order {order:#x} DID land; not resubmitting");
                    effective.push(order);
                }
            }
            Resolved { op: Some(ResolvedOp::Enqueue(order)), resp: None } => {
                println!("teller {tid}: in-flight order {order:#x} lost; resubmitting");
                queue.prep_enqueue(h, order).unwrap();
                queue.exec_enqueue(h);
                effective.push(order);
            }
            other => println!("teller {tid}: nothing in flight ({other:?})"),
        }
    }

    // --- Phase 3: settlement ----------------------------------------------
    let mut balances = [OPENING_BALANCE; ACCOUNTS];
    let mut settled = 0u64;
    loop {
        match queue.dequeue(hs[0]) {
            QueueResp::Value(v) => {
                let (from, to, amount) = unpack(v);
                balances[from] -= amount;
                balances[to] += amount;
                settled += 1;
            }
            QueueResp::Empty => break,
            QueueResp::Ok => unreachable!(),
        }
    }

    // --- Verification -------------------------------------------------------
    let total: i64 = balances.iter().sum();
    println!("settled {settled} orders; balances = {balances:?}; total = {total}");
    assert_eq!(settled as usize, effective.len(), "every effective order settles exactly once");
    assert_eq!(total, OPENING_BALANCE * ACCOUNTS as i64, "money is conserved across the crash");
    println!("ok: exactly-once settlement across a crash, money conserved");
}
