//! Application-managed nesting of DSS-based objects (paper §2.2) and the
//! universal construction.
//!
//! The paper's answer to "DSS does not support nesting": there is no "N"
//! in DSS because nesting is the *application's* job — and this example is
//! that application. It composes three detectable objects:
//!
//! * a [`DetectableRegister`] (`D⟨register⟩`, the object of Figure 2),
//! * a [`DetectableCas`] (`D⟨CAS⟩`),
//! * a [`Universal`] construction instantiating `D⟨counter⟩` — the
//!   "wait-free recoverable implementation of D⟨T⟩ for any conventional
//!   type T" route of §2.2,
//!
//! into a tiny crash-safe configuration service: a config epoch (CAS), the
//! active config value (register), and an audit counter (universal),
//! updated in a fixed order with per-object detection driving redo logic
//! after a crash at every possible point.
//!
//! ```text
//! cargo run --example nested_objects
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use dss::core::{DetectableCas, DetectableRegister, Universal};
use dss::pmem::{CrashSignal, ThreadHandle, WritebackAdversary};
use dss::spec::types::{CounterOp, CounterSpec};

/// One "publish configuration" transaction over the three nested objects:
/// bump the epoch (CAS old→new), write the config value, count the audit
/// event. Each step is detectable, so a crash anywhere is recoverable.
fn publish(
    hs: (ThreadHandle, ThreadHandle, ThreadHandle),
    seq: u64,
    epoch: &DetectableCas,
    config: &DetectableRegister,
    audit: &Universal<CounterSpec>,
    old_epoch: u64,
    value: u64,
) {
    // Each object lives in its own pool with its own registry, so the
    // publisher holds one handle per object.
    let (eh, ch, ah) = hs;
    epoch.prep_cas(eh, old_epoch, old_epoch + 1, seq);
    assert!(epoch.exec_cas(eh), "single publisher: the CAS cannot fail");
    config.prep_write(ch, value, seq);
    config.exec_write(ch);
    audit.prep(ah, CounterOp::FetchAdd(1), seq);
    audit.exec(ah);
}

/// After a crash: resolve each object in program order and redo exactly
/// the steps that did not take effect. Returns how many steps were redone.
fn recover_publish(
    hs: (ThreadHandle, ThreadHandle, ThreadHandle),
    seq: u64,
    epoch: &DetectableCas,
    config: &DetectableRegister,
    audit: &Universal<CounterSpec>,
    old_epoch: u64,
    value: u64,
) -> usize {
    let (eh, ch, ah) = hs;
    let mut redone = 0;

    // Step 1: the epoch CAS. (op, resp): resp None ⇒ no effect ⇒ redo.
    let r = epoch.resolve(eh);
    if r.op != Some((old_epoch, old_epoch + 1, seq)) || r.resp.is_none() {
        epoch.prep_cas(eh, old_epoch, old_epoch + 1, seq);
        assert!(epoch.exec_cas(eh));
        redone += 1;
    }

    // Step 2: the config write.
    let r = config.resolve(ch);
    if r.op != Some((value, seq)) || r.resp.is_none() {
        config.prep_write(ch, value, seq);
        config.exec_write(ch);
        redone += 1;
    }

    // Step 3: the audit increment.
    let (op, resp) = audit.resolve(ah);
    if op != Some((CounterOp::FetchAdd(1), seq)) || resp.is_none() {
        audit.prep(ah, CounterOp::FetchAdd(1), seq);
        audit.exec(ah);
        redone += 1;
    }

    redone
}

fn main() {
    // Sweep a crash over *every* memory-operation index of the composite
    // transaction. Each iteration uses fresh objects (sharing a pool would
    // need a shared crash, which the per-object pools make awkward; the
    // protocol is identical either way).
    let mut k = 1;
    let mut covered = 0;
    loop {
        let epoch = DetectableCas::new(1, 16);
        let config = DetectableRegister::new(1, 16);
        let audit = Universal::new(CounterSpec, 1, 16);
        // Register before arming so the crash index stays relative to the
        // transaction's own memory operations. Handles survive the crash
        // (adoption re-LIVEs the slot), so resolve still works afterwards.
        let hs = (
            epoch.register_thread().unwrap(),
            config.register_thread().unwrap(),
            audit.register_thread().unwrap(),
        );

        // Arm the same countdown on all three pools: whichever object the
        // k-th operation lands in crashes the "machine".
        epoch.pool().arm_crash_after(k);
        let r = catch_unwind(AssertUnwindSafe(|| {
            publish(hs, 1, &epoch, &config, &audit, 0, 0xC0FFEE);
        }));
        epoch.pool().disarm_crash();

        let crashed = match r {
            Ok(()) => false,
            Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
            Err(p) => std::panic::resume_unwind(p),
        };
        if crashed {
            covered += 1;
            // The shared countdown crossed object boundaries, so crash all
            // three pools (a system-wide failure).
            epoch.pool().crash(&WritebackAdversary::None);
            config.pool().crash(&WritebackAdversary::None);
            audit.pool().crash(&WritebackAdversary::None);
            epoch.rebuild_allocator();
            config.rebuild_allocator();
            audit.rebuild_allocator();

            let redone = recover_publish(hs, 1, &epoch, &config, &audit, 0, 0xC0FFEE);
            if k % 8 == 1 {
                println!("crash at op {k:>3}: redid {redone} of 3 steps");
            }
        }

        // The composite state must be fully published exactly once.
        assert_eq!(epoch.read(hs.0), 1, "k={k}");
        assert_eq!(config.read(hs.1), 0xC0FFEE, "k={k}");
        assert_eq!(audit.state(), 1, "k={k}");

        if !crashed {
            break; // the whole transaction ran before reaching k
        }
        k += 1;
    }
    println!("ok: nested detectable objects recovered exactly-once at all {covered} crash points");
}
