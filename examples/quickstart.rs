//! Quickstart: a detectable recoverable queue surviving a crash.
//!
//! Shows the full DSS protocol on the paper's queue: `prep` → `exec` →
//! (crash) → `recover` → `resolve` → retry-if-needed, achieving
//! exactly-once semantics without any transaction machinery.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dss::core::{DssQueue, Resolved, ResolvedOp};
use dss::pmem::WritebackAdversary;
use dss::spec::types::QueueResp;

fn main() {
    // A queue for 2 application threads, 64 pre-allocated nodes each.
    let queue = DssQueue::new(2, 64);
    const TID: usize = 0;

    // --- Normal operation: a detectable enqueue -------------------------
    queue.prep_enqueue(TID, 42).expect("node pool sized for this demo");
    queue.exec_enqueue(TID);
    println!("enqueued 42 detectably; queue = {:?}", queue.snapshot_values());

    // --- A system-wide power failure ------------------------------------
    // Thread 0 prepares another enqueue and starts executing it, but the
    // machine dies mid-operation: we arm a crash after 3 more memory
    // operations, so the node is initialized but never linked.
    queue.prep_enqueue(TID, 43).expect("node pool sized for this demo");
    queue.pool().arm_crash_after(3);
    let unwind = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        queue.exec_enqueue(TID);
    }));
    queue.pool().disarm_crash();
    assert!(unwind.is_err(), "the simulated crash interrupts exec-enqueue");

    // Everything not flushed to the persistence domain is lost:
    queue.pool().crash(&WritebackAdversary::None);
    println!("crash! volatile state discarded");

    // --- Recovery --------------------------------------------------------
    // The centralized recovery procedure (paper Figure 6) repairs head and
    // tail and completes interrupted detectability state; then the
    // volatile allocator is rebuilt from a liveness scan.
    queue.recover();
    queue.rebuild_allocator();

    // --- Detection: what happened to my operation? ----------------------
    let resolved = queue.resolve(TID);
    println!("resolve(thread {TID}) = {resolved:?}");
    match resolved {
        Resolved { op: Some(ResolvedOp::Enqueue(43)), resp: Some(QueueResp::Ok) } => {
            println!("the enqueue of 43 took effect before the crash");
        }
        Resolved { op: Some(ResolvedOp::Enqueue(43)), resp: None } => {
            println!("the enqueue of 43 did NOT take effect; retrying exactly once");
            queue.prep_enqueue(TID, 43).unwrap();
            queue.exec_enqueue(TID);
        }
        other => unreachable!("the DSS forbids any other answer here: {other:?}"),
    }

    // Either way, 43 is now in the queue exactly once, behind 42.
    assert_eq!(queue.snapshot_values(), vec![42, 43]);
    println!("queue after recovery + retry = {:?}", queue.snapshot_values());

    // --- Drain (non-detectably, Axiom 4's plain operations) -------------
    assert_eq!(queue.dequeue(1), QueueResp::Value(42));
    assert_eq!(queue.dequeue(1), QueueResp::Value(43));
    assert_eq!(queue.dequeue(1), QueueResp::Empty);
    println!("drained; exactly-once semantics held across the crash");
}
