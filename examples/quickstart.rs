//! Quickstart: a detectable recoverable queue surviving a crash.
//!
//! Shows the full DSS protocol on the paper's queue: `prep` → `exec` →
//! (crash) → `recover` → `resolve` → retry-if-needed, achieving
//! exactly-once semantics without any transaction machinery.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dss::core::{DssQueue, Resolved, ResolvedOp};
use dss::pmem::WritebackAdversary;
use dss::spec::types::QueueResp;

fn main() {
    // A queue for 2 application threads, 64 pre-allocated nodes each.
    let queue = DssQueue::new(2, 64);
    // Each thread claims a persistent registry slot up front; the handle
    // is what every operation takes in place of a bare thread id.
    let h0 = queue.register_thread().unwrap();
    let h1 = queue.register_thread().unwrap();

    // --- Normal operation: a detectable enqueue -------------------------
    queue.prep_enqueue(h0, 42).expect("node pool sized for this demo");
    queue.exec_enqueue(h0);
    println!("enqueued 42 detectably; queue = {:?}", queue.snapshot_values());

    // --- A system-wide power failure ------------------------------------
    // Thread 0 prepares another enqueue and starts executing it, but the
    // machine dies mid-operation: we arm a crash after 3 more memory
    // operations, so the node is initialized but never linked.
    queue.prep_enqueue(h0, 43).expect("node pool sized for this demo");
    queue.pool().arm_crash_after(3);
    let unwind = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        queue.exec_enqueue(h0);
    }));
    queue.pool().disarm_crash();
    assert!(unwind.is_err(), "the simulated crash interrupts exec-enqueue");

    // Everything not flushed to the persistence domain is lost:
    queue.pool().crash(&WritebackAdversary::None);
    println!("crash! volatile state discarded");

    // --- Recovery --------------------------------------------------------
    // The centralized recovery procedure (paper Figure 6) repairs head and
    // tail and completes interrupted detectability state; then the
    // volatile allocator is rebuilt from a liveness scan.
    queue.recover();
    queue.rebuild_allocator();

    // --- Detection: what happened to my operation? ----------------------
    let resolved = queue.resolve(h0);
    println!("resolve(slot {}) = {resolved:?}", h0.slot());
    match resolved {
        Resolved { op: Some(ResolvedOp::Enqueue(43)), resp: Some(QueueResp::Ok) } => {
            println!("the enqueue of 43 took effect before the crash");
        }
        Resolved { op: Some(ResolvedOp::Enqueue(43)), resp: None } => {
            println!("the enqueue of 43 did NOT take effect; retrying exactly once");
            queue.prep_enqueue(h0, 43).unwrap();
            queue.exec_enqueue(h0);
        }
        other => unreachable!("the DSS forbids any other answer here: {other:?}"),
    }

    // Either way, 43 is now in the queue exactly once, behind 42.
    assert_eq!(queue.snapshot_values(), vec![42, 43]);
    println!("queue after recovery + retry = {:?}", queue.snapshot_values());

    // --- Drain (non-detectably, Axiom 4's plain operations) -------------
    assert_eq!(queue.dequeue(h1), QueueResp::Value(42));
    assert_eq!(queue.dequeue(h1), QueueResp::Value(43));
    assert_eq!(queue.dequeue(h1), QueueResp::Empty);
    println!("drained; exactly-once semantics held across the crash");
}
