//! Facade crate for the DSS reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so the repository-level
//! examples and integration tests have a single dependency. See the
//! individual crates for the real documentation:
//!
//! * [`pmem`] — persistent-memory simulator (volatile cache, flush, crash).
//! * [`spec`] — sequential specifications and the `D⟨T⟩` transformation.
//! * [`checker`] — histories and (crash-aware) linearizability checkers.
//! * [`core`] — the DSS queue and other detectable recoverable objects.
//! * [`pmwcas`] — persistent multi-word CAS and the CASWithEffect queues.
//! * [`baselines`] — MS queue, durable queue, log queue.
//! * [`harness`] — workloads, throughput runner, crash sweeps, experiments.

pub use dss_baselines as baselines;
pub use dss_checker as checker;
pub use dss_core as core;
pub use dss_harness as harness;
pub use dss_pmem as pmem;
pub use dss_pmwcas as pmwcas;
pub use dss_spec as spec;
