#!/usr/bin/env bash
# Repository CI gate. Run from the workspace root; exits non-zero on the
# first failure. The build environment is fully offline — everything here
# works without network access.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> fig5a smoke (both backends, minimal sizes)"
cargo run -q -p dss-harness --release --bin fig5a -- \
    --threads 1 --ms 20 --repeats 1 \
    --backend pmem --backend dram >/dev/null

echo "==> contention bench smoke (2 threads, coalesce/per-address/backoff grid)"
cargo bench -q -p dss-bench --bench contention -- \
    --threads 2 --ms 20 --repeats 1 >/dev/null

echo "==> contention bench smoke (per-address drains at a realistic penalty)"
cargo bench -q -p dss-bench --bench contention -- \
    --threads 2 --ms 20 --repeats 1 --penalty 200 >/dev/null

echo "==> contention crossover smoke (combining >= CAS racing within noise, E14 gate)"
# Penalty 800 puts the run deep in the flush-dominated regime where the
# batched persist is a reliable win; at 200 the layers sit at parity and a
# short smoke can land a hair outside the noise bands.
timeout 180 cargo bench -q -p dss-bench --bench contention -- \
    --threads 2 --ms 30 --repeats 3 --penalty 800 --assert-crossover >/dev/null

echo "==> e10 per-address drain smoke (absorption invariant, both backends)"
cargo run -q -p dss-harness --release --bin e10_per_address_drains -- \
    --threads 2 --ms 20 --repeats 1 \
    --backend pmem --backend dram >/dev/null

echo "==> registry smoke (partial-recovery crash matrix: survivors adopt orphans)"
cargo run -q -p dss-harness --release --bin crash_matrix -- \
    --partial-recovery on >/dev/null

echo "==> multi-process smoke (SIGKILLed victims, parent attaches the pool file)"
cargo run -q -p dss-harness --release --bin crash_matrix -- \
    --multi-process on >/dev/null

echo "==> combining smoke (crash matrix on the flat-combining execution layer)"
timeout 300 cargo run -q -p dss-harness --release --bin crash_matrix -- \
    --combining on >/dev/null
timeout 300 cargo run -q -p dss-harness --release --bin crash_matrix -- \
    --combining on --partial-recovery on >/dev/null

echo "==> replicated smoke (crash matrix on the log-fed replica execution layer)"
timeout 300 cargo run -q -p dss-harness --release --bin crash_matrix -- \
    --replicated on >/dev/null
timeout 300 cargo run -q -p dss-harness --release --bin crash_matrix -- \
    --replicated on --partial-recovery on >/dev/null

echo "==> map smoke (crash matrix on the detectable hash map, per-key checked histories)"
timeout 300 cargo run -q -p dss-harness --release --bin crash_matrix -- \
    --layer map >/dev/null
timeout 300 cargo run -q -p dss-harness --release --bin crash_matrix -- \
    --layer map --partial-recovery on >/dev/null

echo "==> map multi-process smoke (SIGKILLed map victims, parent attaches the pool file)"
timeout 300 cargo run -q -p dss-harness --release --bin crash_matrix -- \
    --layer map --multi-process on >/dev/null

echo "==> replication read-scaling smoke (replica-local reads vs single instance, E15 gate)"
# The gate self-tiers by host parallelism: >=4 CPUs demand 1.5x at 4
# threads, 2-3 CPUs parity-within-noise at the top of the sweep, 1 CPU
# skips (replica-local reads cannot scale without parallelism). The
# sweep must include a 4-thread point for the >=4-CPU tier.
timeout 300 cargo bench -q -p dss-bench --bench replication -- \
    --threads 4 --ms 30 --repeats 2 --assert-read-scaling >/dev/null
rm -f crates/bench/BENCH_replication.json

echo "==> YCSB kv smoke (read-heavy vs update-heavy on the detectable map, E16 gate)"
# The gate self-tiers by host parallelism: >=4 CPUs demand the read-heavy
# Zipfian mix beat the update-heavy mix 1.2x at 4 threads (plain reads
# skip the flush path); smaller hosts demand at-least-parity within noise
# at the top of the sweep.
timeout 300 cargo bench -q -p dss-bench --bench kv -- \
    --threads 4 --ms 30 --repeats 2 --keys 256 --assert-kv-mix >/dev/null
rm -f crates/bench/BENCH_kv.json

echo "==> checker equivalence gate (segmented/streaming/FIFO vs monolithic oracle)"
timeout 120 cargo test -q -p dss-checker --test checker_equivalence
timeout 120 cargo test -q -p dss-harness --test seeded_violations

echo "==> full-length checking smoke (>=10k ops through the partitioned pipeline)"
timeout 60 cargo run -q -p dss-harness --release --bin check_histories -- \
    --mode partitioned >/dev/null

echo "CI green."
