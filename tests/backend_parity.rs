//! Backend parity: every queue implementation produces identical crash-free
//! outcomes on the crash-testable [`PmemPool`] and the zero-overhead
//! [`DramPool`].
//!
//! The `Memory` abstraction is only sound if swapping the substrate never
//! changes what the algorithms compute — the backends may differ in cost
//! and in crash behaviour (dram has none), but a crash-free run must be
//! observationally identical. This drives a deterministic mixed
//! enqueue/dequeue script through each [`QueueKind`] on both backends and
//! compares every response, the drain order, and the flush-instrumentation
//! invariant (pmem counts primitives, dram counts nothing).
//!
//! [`PmemPool`]: dss::pmem::PmemPool
//! [`DramPool`]: dss::pmem::DramPool

use dss::harness::adapter::{Backend, QueueKind};
use dss::spec::types::QueueResp;

/// Deterministic splitmix64, used to derive the op mix from the step index
/// so both backends replay byte-identical scripts.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the script on one backend and returns every observable response in
/// order: per-step dequeue results, then the full drain.
fn run_script(kind: QueueKind, backend: Backend, steps: u64) -> Vec<QueueResp> {
    run_script_with(kind, backend, steps, false, false, false)
}

/// [`run_script`] with the E9/E10 performance axes set explicitly:
/// write-behind flush coalescing, the drain granularity (whole-set vs
/// per-address), and contended-retry backoff change cost, never crash-free
/// outcomes, on either backend.
fn run_script_with(
    kind: QueueKind,
    backend: Backend,
    steps: u64,
    coalesce: bool,
    per_address: bool,
    backoff: bool,
) -> Vec<QueueResp> {
    let q = kind.build_on(backend, 1, 256);
    q.set_coalescing(coalesce);
    q.set_per_address_drains(per_address);
    q.set_backoff(backoff);
    let h = q.register_thread();
    let mut observed = Vec::new();
    for i in 0..steps {
        if !mix(i).is_multiple_of(3) {
            q.enqueue(h, 1000 + i);
        } else {
            observed.push(q.dequeue(h));
        }
    }
    loop {
        let r = q.dequeue(h);
        let done = r == QueueResp::Empty;
        observed.push(r);
        if done {
            break;
        }
    }

    let stats = q.stats();
    match backend {
        Backend::Pmem => {
            assert!(stats.total() > 0, "{} on pmem executed no counted primitives", kind.label())
        }
        Backend::Dram => {
            assert_eq!(stats.total(), 0, "{} on dram counted primitives", kind.label())
        }
    }
    observed
}

#[test]
fn every_kind_matches_across_backends() {
    for kind in QueueKind::all() {
        let pmem = run_script(kind, Backend::Pmem, 200);
        let dram = run_script(kind, Backend::Dram, 200);
        assert_eq!(pmem, dram, "{}: pmem and dram runs diverged", kind.label());
        // The script enqueues ~2/3 of 200 steps; make sure it exercised
        // real traffic rather than vacuously matching on empties.
        let values = pmem.iter().filter(|r| matches!(r, QueueResp::Value(_))).count();
        assert!(values > 50, "{}: only {values} values observed", kind.label());
    }
}

#[test]
fn every_kind_matches_across_backends_with_coalescing_and_backoff() {
    for kind in QueueKind::all() {
        let baseline = run_script(kind, Backend::Pmem, 200);
        for backend in Backend::all() {
            // The drain-granularity axis: whole-set drains (PR 2's
            // behaviour) vs per-address dependency drains.
            for per_address in [false, true] {
                let tuned = run_script_with(kind, backend, 200, true, per_address, true);
                assert_eq!(
                    baseline,
                    tuned,
                    "{} on {} diverged with coalesce+backoff on (per_address={})",
                    kind.label(),
                    backend.label(),
                    per_address
                );
            }
        }
    }
}

#[test]
fn detectable_kinds_match_across_backends_under_flush_penalty() {
    // A flush penalty changes timing, never outcomes.
    for kind in [QueueKind::DssDetectable, QueueKind::Log] {
        let outcomes: Vec<_> = Backend::all()
            .into_iter()
            .map(|backend| {
                let q = kind.build_on(backend, 1, 64);
                q.set_flush_penalty(50);
                let h = q.register_thread();
                (0..20).for_each(|i| q.enqueue(h, i));
                (0..21).map(|_| q.dequeue(h)).collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(outcomes[0], outcomes[1], "{} diverged", kind.label());
    }
}
