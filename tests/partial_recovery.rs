//! The §3.3 partial-restart story, end to end: after a multi-threaded
//! crash only a subset of threads comes back; each survivor recovers its
//! own registry slot independently, and an adopter reclaims every
//! remaining ORPHANED slot and resolves its pending operation.
//!
//! Three layers of evidence:
//!
//! 1. A deterministic run where **only thread 0 restarts**, adopts all
//!    orphaned slots through the registry, resolves every slot's pending
//!    op, and the recorded history passes the strict-linearizability
//!    checker.
//! 2. A full-restart **parity** check: the registry-driven
//!    `DssQueue::recover` produces byte-identical resolved responses (and
//!    queue contents) to the pre-refactor centralized Figure-6 path.
//! 3. A property sweep: a random subset of threads recovers under every
//!    `--coalesce` × `--per-address` knob combination and the checker
//!    still accepts the resolved history.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use dss::checker::Condition;
use dss::core::{DssQueue, Resolved};
use dss::harness::crashsim::partial_recovery_crash_run;
use dss::harness::record::{check_recorded, record_partial_recovery_execution};
use dss::pmem::{CrashSignal, SlotState, WritebackAdversary};

/// The acceptance scenario: three threads crash mid-operation, only
/// thread 0 restarts. It recovers its own slot, then adopts both dead
/// threads' slots via the registry and resolves their pending ops. Every
/// slot must end LIVE again, and the recorded `D⟨queue⟩` history must be
/// strictly linearizable.
#[test]
fn thread_zero_adopts_everyone_and_history_checks() {
    const THREADS: usize = 3;
    for seed in 0..6u64 {
        // Registry-level view: drive the crash directly and inspect slots.
        let q = DssQueue::new(THREADS, 64);
        let hs: Vec<_> = (0..THREADS).map(|_| q.register_thread().unwrap()).collect();
        crash_all_threads(&q, &hs, seed);
        q.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });

        // Only thread 0 restarts.
        q.begin_recovery();
        for s in 0..THREADS {
            assert_eq!(
                q.registry().slot_state(s),
                Ok(SlotState::Orphaned),
                "seed {seed}: slot {s} must be orphaned after the crash boundary"
            );
        }
        let mine = q.adopt(hs[0].slot()).expect("own slot is adoptable");
        q.recover_one(mine);
        let adopted = q.adopt_orphans();
        assert_eq!(adopted.len(), THREADS - 1, "seed {seed}: thread 0 adopts the rest");
        for h in &adopted {
            q.recover_one(*h);
        }
        q.rebuild_allocator();
        for s in 0..THREADS {
            assert_eq!(
                q.registry().slot_state(s),
                Ok(SlotState::Live),
                "seed {seed}: slot {s} must be re-LIVE after adoption"
            );
        }
        // Every slot's pending op resolves to a definite verdict shape.
        for &h in &hs {
            let r = q.resolve(h);
            assert!(matches!(r, Resolved { .. }), "seed {seed}: slot {} did not resolve", h.slot());
        }

        // History-level view: the same shape through the recorder must be
        // strictly linearizable.
        let h = record_partial_recovery_execution(THREADS, 1, 10, seed, false, false);
        assert!(h.validate().is_ok());
        check_recorded(&h, Condition::StrictLinearizability)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Drives one deterministic single-threaded script into a crash at pmem-op
/// index `k`, recovers with `f`, and returns every observable: the
/// resolved response and the surviving queue contents.
fn crash_then(k: u64, seed: u64, f: impl FnOnce(&DssQueue)) -> (Resolved, Vec<u64>) {
    let q = DssQueue::new(2, 64);
    let h0 = q.register_thread().unwrap();
    let _h1 = q.register_thread().unwrap();
    q.enqueue(h0, 1).unwrap();
    q.enqueue(h0, 2).unwrap();
    q.pool().arm_crash_after(k);
    let r = catch_unwind(AssertUnwindSafe(|| {
        q.prep_dequeue(h0);
        let _ = q.exec_dequeue(h0);
        q.prep_enqueue(h0, 3).unwrap();
        q.exec_enqueue(h0);
    }));
    q.pool().disarm_crash();
    if let Err(p) = r {
        if p.downcast_ref::<CrashSignal>().is_none() {
            resume_unwind(p);
        }
    }
    q.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });
    f(&q);
    q.rebuild_allocator();
    (q.resolve(h0), q.snapshot_values())
}

/// Full-restart parity: for every crash point the script can reach, the
/// registry-driven `recover()` (adopt orphans, then repair each) must
/// produce byte-identical resolved responses and queue contents to the
/// pre-refactor centralized Figure-6 reference path.
#[test]
fn registry_recovery_matches_centralized_reference() {
    for seed in [3u64, 17] {
        for k in 1..80 {
            let (res_reg, vals_reg) = crash_then(k, seed, |q| {
                q.recover();
            });
            let (res_cen, vals_cen) = crash_then(k, seed, |q| {
                q.recover_centralized();
            });
            assert_eq!(res_reg, res_cen, "k={k} seed={seed}: resolved responses diverged");
            assert_eq!(vals_reg, vals_cen, "k={k} seed={seed}: queue contents diverged");
        }
    }
}

/// Runs one detectable enqueue/dequeue worker per handle until each hits
/// a seed-derived crash point (the shape the §3.3 tests share).
fn crash_all_threads(q: &DssQueue, hs: &[dss::pmem::ThreadHandle], seed: u64) {
    std::thread::scope(|scope| {
        for (tid, &h) in hs.iter().enumerate() {
            scope.spawn(move || {
                q.pool().arm_crash_after(15 + seed * 7 + tid as u64 * 13);
                let r = catch_unwind(AssertUnwindSafe(|| {
                    for i in 1..u64::MAX {
                        q.prep_enqueue(h, (tid as u64) << 32 | i).unwrap();
                        q.exec_enqueue(h);
                        q.prep_dequeue(h);
                        let _ = q.exec_dequeue(h);
                    }
                }));
                q.pool().disarm_crash();
                if let Err(p) = r {
                    if p.downcast_ref::<CrashSignal>().is_none() {
                        resume_unwind(p);
                    }
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two survivors race `adopt_orphans` after a crash: the registry's
    /// CAS-guarded ORPHANED→LIVE transition must hand each orphaned slot
    /// to exactly one of them — no slot twice, no slot dropped.
    #[test]
    fn racing_adopters_claim_each_orphan_exactly_once(
        threads in 3usize..6,
        seed in 0u64..500,
    ) {
        let q = DssQueue::new(threads, 64);
        let hs: Vec<_> = (0..threads).map(|_| q.register_thread().unwrap()).collect();
        crash_all_threads(&q, &hs, seed);
        q.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });

        // Survivors 0 and 1 come back and recover their own slots first.
        q.begin_recovery();
        for h in &hs[..2] {
            let mine = q.adopt(h.slot()).expect("own slot is adoptable");
            q.recover_one(mine);
        }
        // Then both race to adopt everything nobody came back for.
        let (a, b) = std::thread::scope(|scope| {
            let ta = scope.spawn(|| q.adopt_orphans());
            let tb = scope.spawn(|| q.adopt_orphans());
            (ta.join().unwrap(), tb.join().unwrap())
        });

        let total = a.len() + b.len();
        let mut slots: Vec<usize> = a.iter().chain(b.iter()).map(|h| h.slot()).collect();
        slots.sort_unstable();
        slots.dedup();
        prop_assert_eq!(slots.len(), total, "an orphan was adopted twice");
        prop_assert_eq!(slots, (2..threads).collect::<Vec<_>>(), "an orphan was never adopted");

        for h in a.iter().chain(b.iter()) {
            q.recover_one(*h);
        }
        q.rebuild_allocator();
        for s in 0..threads {
            prop_assert_eq!(q.registry().slot_state(s), Ok(SlotState::Live));
        }
    }

    /// Satellite sweep: a random subset of threads recovers (the rest are
    /// adopted) under all four coalescing/per-address knob combinations;
    /// the conservation invariant and the strict-linearizability checker
    /// must both accept every run.
    #[test]
    fn random_survivor_subsets_check_under_all_knobs(
        threads in 2usize..5,
        survivor_pick in 0usize..100,
        seed in 0u64..500,
    ) {
        let survivors = 1 + survivor_pick % threads;
        partial_recovery_crash_run(threads, survivors, seed)
            .map_err(TestCaseError::Fail)?;
        for (coalesce, per_address) in
            [(false, false), (false, true), (true, false), (true, true)]
        {
            let h = record_partial_recovery_execution(
                threads, survivors, 8, seed, coalesce, per_address,
            );
            prop_assert!(h.validate().is_ok());
            if let Err(e) = check_recorded(&h, Condition::StrictLinearizability) {
                return Err(TestCaseError::Fail(format!(
                    "coalesce={coalesce} per_address={per_address}: {e}"
                )));
            }
        }
    }
}
