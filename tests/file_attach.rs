//! Cross-process attach round-trips: every structure is created on a
//! file-backed pool, operated on, dropped (all in-DRAM side tables lost),
//! and re-attached from the path alone — the file's superblock is the only
//! source of truth. Dropping the creator stands in for process death here;
//! the genuine SIGKILL version (no drop glue, no clean handoff) lives in
//! the harness's `--multi-process` crash matrix.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dss::baselines::{DurableQueue, LogQueue, MsQueue};
use dss::core::{
    CombiningQueue, DetectableCas, DetectableRegister, DssQueue, DssStack, ResolvedOp, Universal,
};
use dss::pmem::AttachError;
use dss::pmwcas::{CasWithEffectQueue, CweResolvedOp};
use dss::spec::types::{CounterOp, CounterSpec, QueueResp, StackResp};

/// A unique pool-file path, removed again on drop (tests run in parallel
/// within one process, so a counter plus the pid keeps them distinct).
struct TmpPool(PathBuf);

impl TmpPool {
    fn new(name: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let mut p = std::env::temp_dir();
        p.push(format!("dss-attach-{}-{name}-{n}.pool", std::process::id()));
        TmpPool(p)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TmpPool {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn queue_survives_drop_and_attach() {
    let tmp = TmpPool::new("queue");
    {
        let q = DssQueue::create(tmp.path(), 2, 8).unwrap();
        let h0 = q.register_thread().unwrap();
        for v in [1, 2] {
            q.enqueue(h0, v).unwrap();
        }
        // The last op takes the detectable prep/exec path so the attacher
        // has an announce to resolve (the `enqueue` wrapper omits X).
        q.prep_enqueue(h0, 3).unwrap();
        q.exec_enqueue(h0);
        // Clean handoff: make every pended write-back durable. The crashy
        // variant (no drain) is the harness's multi-process matrix.
        q.pool().drain();
    }
    let q = DssQueue::attach(tmp.path()).unwrap();
    let adopted = q.recover();
    assert_eq!(adopted.len(), 1, "the dead process's slot must be orphaned");
    assert_eq!(q.snapshot_values(), vec![1, 2, 3]);
    let r = q.resolve(adopted[0]);
    assert_eq!(r.op, Some(ResolvedOp::Enqueue(3)));
    assert_eq!(r.resp, Some(QueueResp::Ok));
    // The attached queue is fully operational.
    assert_eq!(q.dequeue(adopted[0]), QueueResp::Value(1));
}

#[test]
fn queue_attach_twice_is_two_crash_boundaries() {
    let tmp = TmpPool::new("queue-twice");
    {
        let q = DssQueue::create(tmp.path(), 1, 8).unwrap();
        let h = q.register_thread().unwrap();
        q.enqueue(h, 42).unwrap();
        q.pool().drain();
    }
    {
        let q = DssQueue::attach(tmp.path()).unwrap();
        let hs = q.recover();
        assert_eq!(q.dequeue(hs[0]), QueueResp::Value(42));
        q.pool().drain();
    }
    // The second attacher sees the first attacher's slot as the orphan.
    let q = DssQueue::attach(tmp.path()).unwrap();
    let hs = q.recover();
    assert_eq!(hs.len(), 1);
    assert_eq!(q.dequeue(hs[0]), QueueResp::Empty);
}

#[test]
fn stack_survives_drop_and_attach() {
    let tmp = TmpPool::new("stack");
    {
        let st = DssStack::create(tmp.path(), 2, 8).unwrap();
        let h = st.register_thread().unwrap();
        st.push(h, 10).unwrap();
        st.push(h, 20).unwrap();
        st.pool().drain();
    }
    let st = DssStack::attach(tmp.path()).unwrap();
    let adopted = st.recover();
    assert_eq!(adopted.len(), 1);
    assert_eq!(st.snapshot_values(), vec![20, 10], "LIFO: top first");
    assert_eq!(st.pop(adopted[0]), StackResp::Value(20));
}

#[test]
fn register_survives_drop_and_attach() {
    let tmp = TmpPool::new("register");
    {
        let r = DetectableRegister::create(tmp.path(), 2, 8).unwrap();
        let h = r.register_thread().unwrap();
        r.prep_write(h, 77, 4);
        r.exec_write(h);
        r.pool().drain();
    }
    let r = DetectableRegister::attach(tmp.path()).unwrap();
    r.begin_recovery();
    let adopted = r.adopt_orphans();
    assert_eq!(adopted.len(), 1);
    assert_eq!(r.read(adopted[0]), 77);
    let res = r.resolve(adopted[0]);
    assert_eq!(res.op.map(|(v, _)| v), Some(77));
    assert!(res.resp.is_some(), "the drained write must have taken effect");
}

#[test]
fn cas_survives_drop_and_attach() {
    let tmp = TmpPool::new("cas");
    {
        let c = DetectableCas::create(tmp.path(), 2, 8).unwrap();
        let h = c.register_thread().unwrap();
        c.prep_cas(h, 0, 9, 4);
        assert!(c.exec_cas(h));
        c.pool().drain();
    }
    let c = DetectableCas::attach(tmp.path()).unwrap();
    c.begin_recovery();
    let adopted = c.adopt_orphans();
    assert_eq!(adopted.len(), 1);
    assert_eq!(c.read(adopted[0]), 9);
    let res = c.resolve(adopted[0]);
    assert_eq!(res.op.map(|(e, n, _)| (e, n)), Some((0, 9)));
    assert_eq!(res.resp, Some(true));
}

#[test]
fn universal_survives_drop_and_attach() {
    let tmp = TmpPool::new("universal");
    {
        let u = Universal::create(CounterSpec, tmp.path(), 2, 64).unwrap();
        let h = u.register_thread().unwrap();
        u.prep(h, CounterOp::FetchAdd(5), 0);
        u.exec(h);
        u.prep(h, CounterOp::FetchAdd(3), 1);
        u.exec(h);
        u.pool().drain();
    }
    // The spec is code, not data: the attacher supplies it again.
    let u = Universal::attach(CounterSpec, tmp.path()).unwrap();
    u.begin_recovery();
    let adopted = u.adopt_orphans();
    assert_eq!(adopted.len(), 1);
    assert_eq!(u.state(), 8, "both fetch-adds are in the persisted history");
    let (op, resp) = u.resolve(adopted[0]);
    assert_eq!(op, Some((CounterOp::FetchAdd(3), 1)));
    assert!(resp.is_some());
}

#[test]
fn durable_queue_survives_drop_and_attach() {
    let tmp = TmpPool::new("durable");
    {
        let q = DurableQueue::create(tmp.path(), 2, 8).unwrap();
        let h = q.register_thread().unwrap();
        q.enqueue(h, 5).unwrap();
        q.enqueue(h, 6).unwrap();
        q.pool().drain();
    }
    let q = DurableQueue::attach(tmp.path()).unwrap();
    q.recover();
    q.begin_recovery();
    let adopted = q.adopt_orphans();
    assert_eq!(adopted.len(), 1);
    assert_eq!(q.snapshot_values(), vec![5, 6]);
    assert_eq!(q.dequeue(adopted[0]), QueueResp::Value(5));
}

#[test]
fn log_queue_survives_drop_and_attach() {
    let tmp = TmpPool::new("log");
    {
        let q = LogQueue::create(tmp.path(), 2, 8).unwrap();
        let h = q.register_thread().unwrap();
        q.enqueue(h, 11).unwrap();
        q.pool().drain();
    }
    let q = LogQueue::attach(tmp.path()).unwrap();
    q.recover();
    q.begin_recovery();
    let adopted = q.adopt_orphans();
    assert_eq!(adopted.len(), 1);
    assert_eq!(q.snapshot_values(), vec![11]);
    let res = q.resolve(adopted[0]);
    assert_eq!(res.op, Some(Some(11)), "last announced op was enqueue(11)");
    assert_eq!(res.resp, Some(QueueResp::Ok));
}

#[test]
fn ms_queue_attach_loses_contents_but_keeps_registry() {
    let tmp = TmpPool::new("ms");
    {
        let q = MsQueue::create(tmp.path(), 2, 8).unwrap();
        let h = q.register_thread().unwrap();
        q.enqueue(h, 1).unwrap();
        q.enqueue(h, 2).unwrap();
        q.pool().drain();
    }
    // The volatile baseline by design: no operation ever flushed, so the
    // contents do not survive the process — only the registry does.
    let q = MsQueue::attach(tmp.path()).unwrap();
    assert_eq!(q.snapshot_values(), Vec::<u64>::new());
    let h = q.register_thread().unwrap();
    q.enqueue(h, 3).unwrap();
    assert_eq!(q.dequeue(h), QueueResp::Value(3));
}

#[test]
fn cwe_queue_both_variants_survive_drop_and_attach() {
    for fast in [false, true] {
        let tmp = TmpPool::new(if fast { "cwe-fast" } else { "cwe-general" });
        {
            let q = if fast {
                CasWithEffectQueue::create_fast(tmp.path(), 2, 8).unwrap()
            } else {
                CasWithEffectQueue::create_general(tmp.path(), 2, 8).unwrap()
            };
            let h = q.register_thread().unwrap();
            q.prep_enqueue(h, 31).unwrap();
            q.exec_enqueue(h);
            q.pool().drain();
        }
        // attach reconstructs the variant from the superblock's flag word.
        let q = CasWithEffectQueue::attach(tmp.path()).unwrap();
        assert_eq!(q.is_fast(), fast);
        q.recover();
        q.begin_recovery();
        let adopted = q.adopt_orphans();
        assert_eq!(adopted.len(), 1);
        assert_eq!(q.snapshot_values(), vec![31]);
        let res = q.resolve(adopted[0]);
        assert_eq!(res.op, Some(CweResolvedOp::Enqueue(31)));
        assert_eq!(res.resp, Some(QueueResp::Ok));
        assert_eq!(
            q.exec_dequeue({
                q.prep_dequeue(adopted[0]);
                adopted[0]
            }),
            QueueResp::Value(31)
        );
    }
}

#[test]
fn combining_queue_survives_drop_and_attach() {
    let tmp = TmpPool::new("combining");
    {
        let q = CombiningQueue::create(tmp.path(), 2, 8).unwrap();
        let h = q.register_thread().unwrap();
        q.enqueue(h, 1).unwrap();
        q.enqueue(h, 2).unwrap();
        q.prep_enqueue(h, 3).unwrap();
        q.exec_enqueue(h);
        q.pool().drain();
    }
    // Attach clears the dead process's lease; recovery adopts its slot and
    // the batch-applied contents are all there.
    let q = CombiningQueue::attach(tmp.path()).unwrap();
    let adopted = q.recover();
    assert_eq!(adopted.len(), 1, "the dead process's slot must be orphaned");
    assert_eq!(q.snapshot_values(), vec![1, 2, 3]);
    let r = q.resolve(adopted[0]);
    assert_eq!(r.op, Some(ResolvedOp::Enqueue(3)));
    assert_eq!(r.resp, Some(QueueResp::Ok));
    // The attached queue combines again: this dequeue goes through a
    // fresh combiner batch in the new process.
    assert_eq!(q.dequeue(adopted[0]), QueueResp::Value(1));
}

#[test]
fn combining_and_cas_pools_reject_each_other() {
    // The two execution layers share the node layout but not the lease
    // line (and a CAS attacher would race a combiner's plain-store
    // discipline), so neither may silently adopt the other's file.
    let cas = TmpPool::new("cas-pool");
    {
        let q = DssQueue::create(cas.path(), 1, 4).unwrap();
        q.pool().drain();
    }
    match CombiningQueue::attach(cas.path()) {
        Err(AttachError::AppMismatch { expected, found }) => {
            assert_eq!(expected, dss::core::KIND_DSS_QUEUE_COMBINING);
            assert_eq!(found, dss::core::KIND_DSS_QUEUE);
        }
        other => panic!("expected AppMismatch, got {other:?}"),
    }
    let comb = TmpPool::new("combining-pool");
    {
        let q = CombiningQueue::create(comb.path(), 1, 4).unwrap();
        q.pool().drain();
    }
    match DssQueue::attach(comb.path()) {
        Err(AttachError::AppMismatch { expected, found }) => {
            assert_eq!(expected, dss::core::KIND_DSS_QUEUE);
            assert_eq!(found, dss::core::KIND_DSS_QUEUE_COMBINING);
        }
        other => panic!("expected AppMismatch, got {other:?}"),
    }
}

#[test]
fn attach_rejects_wrong_structure_kind() {
    let tmp = TmpPool::new("mismatch");
    {
        let q = DssQueue::create(tmp.path(), 1, 4).unwrap();
        q.pool().drain();
    }
    match DssStack::attach(tmp.path()) {
        Err(AttachError::AppMismatch { expected, found }) => {
            assert_eq!(expected, dss::core::KIND_DSS_STACK);
            assert_eq!(found, dss::core::KIND_DSS_QUEUE);
        }
        other => panic!("expected AppMismatch, got {other:?}"),
    }
    // Same check across crates: a baseline refuses a core structure's file.
    assert!(matches!(
        DurableQueue::attach(tmp.path()),
        Err(AttachError::AppMismatch { found, .. }) if found == dss::core::KIND_DSS_QUEUE
    ));
}

#[test]
fn attach_missing_file_is_io_error() {
    let tmp = TmpPool::new("missing");
    assert!(matches!(DssQueue::attach(tmp.path()), Err(AttachError::Io(_))));
}

#[test]
fn file_backed_and_anonymous_runs_agree() {
    // Byte-parity satellite: the same op sequence on an anonymous pool and
    // a file-backed pool leaves identical persisted queue state.
    let tmp = TmpPool::new("parity");
    let anon = DssQueue::new(1, 8);
    let file = DssQueue::create(tmp.path(), 1, 8).unwrap();
    let ha = anon.register_thread().unwrap();
    let hf = file.register_thread().unwrap();
    for v in [4, 5, 6] {
        anon.enqueue(ha, v).unwrap();
        file.enqueue(hf, v).unwrap();
    }
    assert_eq!(anon.dequeue(ha), QueueResp::Value(4));
    assert_eq!(file.dequeue(hf), QueueResp::Value(4));
    assert_eq!(anon.snapshot_values(), file.snapshot_values());
    assert_eq!(anon.resolve(ha), file.resolve(hf));
}
