//! Cross-crate integration tests through the `dss` facade: queues from
//! three crates, the pmem substrate, the harness drivers, and the
//! linearizability checker, exercised together.

use dss::checker::Condition;
use dss::core::DssQueue;
use dss::harness::adapter::QueueKind;
use dss::harness::crashsim::{concurrent_crash_run, sweep, SweepConfig, VictimOp};
use dss::harness::record::{check_recorded, record_crash_execution, record_execution};
use dss::harness::throughput::{measure, ThroughputConfig};
use dss::pmem::{FlushGranularity, WritebackAdversary};
use dss::spec::types::QueueResp;
use std::time::Duration;

#[test]
fn all_seven_queues_interleave_correctly() {
    for kind in QueueKind::all() {
        let q = kind.build(3, 64);
        let hs: Vec<_> = (0..3).map(|_| q.register_thread()).collect();
        // Interleaved FIFO pattern across threads.
        q.enqueue(hs[0], 1);
        q.enqueue(hs[1], 2);
        assert_eq!(q.dequeue(hs[2]), QueueResp::Value(1), "{}", kind.label());
        q.enqueue(hs[2], 3);
        assert_eq!(q.dequeue(hs[0]), QueueResp::Value(2), "{}", kind.label());
        assert_eq!(q.dequeue(hs[1]), QueueResp::Value(3), "{}", kind.label());
        assert_eq!(q.dequeue(hs[1]), QueueResp::Empty, "{}", kind.label());
    }
}

#[test]
fn throughput_driver_runs_every_kind() {
    let config = ThroughputConfig {
        threads: 2,
        duration: Duration::from_millis(20),
        repeats: 1,
        nodes_per_thread: 256,
        flush_penalty: 0,
        ..Default::default()
    };
    for kind in QueueKind::all() {
        assert!(measure(kind, &config).mops_mean > 0.0, "{}", kind.label());
    }
}

#[test]
fn crash_matrix_is_clean_under_every_configuration() {
    for adversary in [
        WritebackAdversary::None,
        WritebackAdversary::All,
        WritebackAdversary::Random { seed: 42, prob: 0.5 },
    ] {
        for granularity in [FlushGranularity::Line, FlushGranularity::Word] {
            for coalesce in [false, true] {
                let config = SweepConfig {
                    adversary: adversary.clone(),
                    granularity,
                    independent_recovery: false,
                    coalesce,
                    per_address: coalesce,
                    // The combining and replicated layers' own exhaustive
                    // sweeps live in the harness crashsim tests and the
                    // `--combining` / `--replicated` crash matrices.
                    combining: false,
                    replicated: false,
                };
                for op in VictimOp::all() {
                    let out = sweep(op, &config);
                    assert_eq!(out.violations, 0, "{op} {config:?}: {out:?}");
                }
            }
        }
    }
}

#[test]
fn multithreaded_crashes_conserve_values() {
    for seed in 100..110 {
        concurrent_crash_run(4, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn recorded_histories_machine_check_as_theorem_1_claims() {
    for seed in 50..60 {
        let h = record_execution(3, 4, seed);
        check_recorded(&h, Condition::Linearizability)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let h = record_crash_execution(2, 6, seed);
        check_recorded(&h, Condition::StrictLinearizability)
            .unwrap_or_else(|e| panic!("seed {seed} (crash): {e}"));
    }
}

#[test]
fn repeated_crash_recover_cycles() {
    // Survive five consecutive crashes, each mid-operation, with state
    // advancing correctly between them.
    let q = DssQueue::new(1, 64);
    let h0 = q.register_thread().unwrap();
    let mut expected = Vec::new();
    for round in 0u64..5 {
        let value = 100 + round;
        q.prep_enqueue(h0, value).unwrap();
        q.pool().arm_crash_after(2 + round); // different point each round
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.exec_enqueue(h0);
        }));
        q.pool().disarm_crash();
        q.pool().crash(&WritebackAdversary::Random { seed: round, prob: 0.5 });
        q.recover();
        q.rebuild_allocator();
        let _ = r;
        // Exactly-once retry discipline:
        match q.resolve(h0) {
            dss::core::Resolved { resp: Some(QueueResp::Ok), .. } => {}
            _ => {
                q.prep_enqueue(h0, value).unwrap();
                q.exec_enqueue(h0);
            }
        }
        expected.push(value);
        assert_eq!(q.snapshot_values(), expected, "round {round}");
    }
    // Finally drain it all.
    for v in expected {
        assert_eq!(q.dequeue(h0), QueueResp::Value(v));
    }
    assert_eq!(q.dequeue(h0), QueueResp::Empty);
}

#[test]
fn detectability_is_on_demand() {
    // The DSS's flexibility claim: the same queue serves detectable and
    // non-detectable operations side by side, and only the former pay for
    // the X updates.
    let q = DssQueue::new(2, 64);
    let h0 = q.register_thread().unwrap();
    let h1 = q.register_thread().unwrap();
    q.pool().reset_stats();
    q.enqueue(h0, 1).unwrap();
    let plain = q.pool().stats();
    q.pool().reset_stats();
    q.prep_enqueue(h1, 2).unwrap();
    q.exec_enqueue(h1);
    let detectable = q.pool().stats();
    assert!(
        detectable.flushes > plain.flushes,
        "detectable enqueue must issue extra flushes ({} vs {})",
        detectable.flushes,
        plain.flushes
    );
    assert_eq!(q.dequeue(h0), QueueResp::Value(1));
    assert_eq!(q.dequeue(h0), QueueResp::Value(2));
}
