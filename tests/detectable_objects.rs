//! Integration tests for the non-queue detectable objects — register,
//! CAS, and the universal construction — including the §2.2 nesting
//! story, through the `dss` facade.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dss::core::{DetectableCas, DetectableRegister, Universal};
use dss::pmem::{CrashSignal, WritebackAdversary};
use dss::spec::types::{
    CounterOp, CounterResp, CounterSpec, QueueOp, QueueResp, QueueSpec, RegisterResp, StackOp,
    StackResp, StackSpec,
};

fn crashes<F: FnOnce()>(pool: &dss::pmem::PmemPool, k: u64, f: F) -> bool {
    pool.arm_crash_after(k);
    let r = catch_unwind(AssertUnwindSafe(f));
    pool.disarm_crash();
    match r {
        Ok(()) => false,
        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
        Err(p) => std::panic::resume_unwind(p),
    }
}

#[test]
fn register_figure2_all_four_cases_are_reachable() {
    // Sweep crash points and bucket the outcomes; all three legal
    // response classes must occur, and nothing else.
    let mut saw = [false; 3]; // (⊥,⊥), (op,⊥), (op,OK)
    for k in 1.. {
        let r = DetectableRegister::new(1, 8);
        let h0 = r.register_thread().unwrap();
        let crashed = crashes(r.pool(), k, || {
            r.prep_write(h0, 1, 0);
            r.exec_write(h0);
        });
        if !crashed {
            break;
        }
        r.pool().crash(&WritebackAdversary::All);
        r.rebuild_allocator();
        let res = r.resolve(h0);
        match (res.op, res.resp) {
            (None, None) => saw[0] = true,
            (Some((1, 0)), None) => saw[1] = true,
            (Some((1, 0)), Some(RegisterResp::Ok)) => saw[2] = true,
            other => panic!("k={k}: impossible resolution {other:?}"),
        }
    }
    assert_eq!(saw, [true, true, true], "all Figure 2 outcome classes observed");
}

#[test]
fn cas_contention_only_one_winner_per_generation() {
    // Two threads race identical CAS(0 -> v); exactly one must win.
    let c = DetectableCas::new(2, 16);
    let hs: Vec<_> = (0..2).map(|_| c.register_thread().unwrap()).collect();
    let winners: Vec<bool> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|tid| {
                let c = &c;
                let h = hs[tid];
                s.spawn(move || {
                    c.prep_cas(h, 0, 10 + tid as u64, 0);
                    c.exec_cas(h)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(winners.iter().filter(|w| **w).count(), 1, "exactly one CAS succeeds");
    let v = c.read(hs[0]);
    assert!(v == 10 || v == 11);
    // Both threads can resolve their outcome after the fact.
    for (tid, won) in winners.iter().enumerate() {
        assert_eq!(c.resolve(hs[tid]).resp, Some(*won));
    }
}

#[test]
fn universal_queue_agrees_with_bespoke_semantics() {
    // The universal construction of D<queue> and the hand-built DSS queue
    // implement the same type: run the same script through both.
    let uni = Universal::new(QueueSpec, 1, 64);
    let dss = dss::core::DssQueue::new(1, 64);
    let uh = uni.register_thread().unwrap();
    let dh = dss.register_thread().unwrap();
    let script = [5u64, 9, 1, 7];
    for v in script {
        assert_eq!(uni.plain(uh, QueueOp::Enqueue(v)), QueueResp::Ok);
        dss.enqueue(dh, v).unwrap();
    }
    loop {
        let a = uni.plain(uh, QueueOp::Dequeue);
        let b = dss.dequeue(dh);
        assert_eq!(a, b);
        if a == QueueResp::Empty {
            break;
        }
    }
}

#[test]
fn universal_stack_crash_sweep_is_exactly_once() {
    for k in 1..80 {
        let st = Universal::new(StackSpec, 1, 32);
        let h0 = st.register_thread().unwrap();
        st.plain(h0, StackOp::Push(1));
        let crashed = crashes(st.pool(), k, || {
            st.prep(h0, StackOp::Push(2), 77);
            st.exec(h0);
        });
        if !crashed {
            break;
        }
        st.pool().crash(&WritebackAdversary::None);
        st.rebuild_allocator();
        // Exactly-once retry discipline driven by resolve:
        let (op, resp) = st.resolve(h0);
        if op == Some((StackOp::Push(2), 77)) && resp.is_none() {
            st.prep(h0, StackOp::Push(2), 78);
            st.exec(h0);
        } else if op != Some((StackOp::Push(2), 77)) {
            // prep itself never persisted
            st.prep(h0, StackOp::Push(2), 78);
            st.exec(h0);
        }
        assert_eq!(st.state(), vec![1, 2], "k={k}");
    }
}

#[test]
fn universal_counter_under_concurrency_and_crash() {
    let c = Universal::new(CounterSpec, 3, 512);
    let hs: Vec<_> = (0..3).map(|_| c.register_thread().unwrap()).collect();
    let per_thread = 30u64;
    std::thread::scope(|s| {
        for &h in &hs {
            let c = &c;
            s.spawn(move || {
                for i in 0..per_thread {
                    c.prep(h, CounterOp::FetchAdd(1), i);
                    c.exec(h);
                }
            });
        }
    });
    assert_eq!(c.state(), 90);
    // Crash erases nothing that was executed (links are flushed), and the
    // counter replays identically.
    c.pool().crash(&WritebackAdversary::None);
    c.rebuild_allocator();
    assert_eq!(c.state(), 90);
    let (_, resp) = c.resolve(hs[1]);
    assert!(matches!(resp, Some(CounterResp::Value(_))));
}

#[test]
fn register_and_cas_pools_are_independent() {
    // Crashing one object leaves the other untouched (per-object pools).
    let r = DetectableRegister::new(1, 8);
    let c = DetectableCas::new(1, 8);
    let rh = r.register_thread().unwrap();
    let ch = c.register_thread().unwrap();
    r.prep_write(rh, 5, 0);
    r.exec_write(rh);
    c.prep_cas(ch, 0, 9, 0);
    assert!(c.exec_cas(ch));
    r.pool().crash(&WritebackAdversary::None);
    r.rebuild_allocator();
    assert_eq!(c.read(ch), 9, "the CAS object never crashed");
    assert_eq!(r.read(rh), 5, "the write was persisted before the crash");
}

#[test]
fn stack_resolve_distinguishes_repeated_identical_ops_by_seq() {
    // The §2.1 ambiguity remedy: same op twice, different seq tags.
    let st = Universal::new(StackSpec, 1, 16);
    let h0 = st.register_thread().unwrap();
    st.prep(h0, StackOp::Push(4), 0);
    assert_eq!(st.exec(h0), StackResp::Ok);
    st.prep(h0, StackOp::Push(4), 1);
    let (op, resp) = st.resolve(h0);
    assert_eq!(op, Some((StackOp::Push(4), 1)), "resolve names the *second* push");
    assert!(resp.is_none(), "which has not executed yet");
}
