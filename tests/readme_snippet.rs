//! Keeps the README's "Choosing a backend" example compiling and honest:
//! this is that snippet, verbatim but for the prints becoming asserts.

use dss::core::DssQueue;
use dss::pmem::{DramPool, FlushGranularity, Memory};

#[test]
fn readme_backend_example() {
    // Simulated persistent memory (default): crashes, recovery, flush counts.
    let q = DssQueue::new(2, 64);
    let h = q.register_thread().unwrap();
    q.enqueue(h, 7).unwrap();
    assert!(q.pool().stats().total() > 0);

    // Plain DRAM: same algorithm, zero simulator overhead, nothing counted.
    let q: DssQueue<DramPool> = DssQueue::new_in(2, 64, FlushGranularity::Line);
    let h = q.register_thread().unwrap();
    q.enqueue(h, 7).unwrap();
    assert_eq!(q.pool().stats().total(), 0);
}
