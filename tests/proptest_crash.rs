//! Property-based crash testing of the DSS queue.
//!
//! For arbitrary operation scripts, crash points, writeback adversaries,
//! and flush granularities: after crash + recovery, `resolve` must answer
//! consistently with the persisted queue state, and no value may be lost,
//! duplicated, or invented.

use std::collections::HashSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use dss::core::{DssQueue, Resolved, ResolvedOp};
use dss::pmem::{CrashSignal, FlushGranularity, WritebackAdversary};
use dss::spec::types::QueueResp;

#[derive(Clone, Copy, Debug)]
enum Op {
    DetEnqueue,
    DetDequeue,
    PlainEnqueue,
    PlainDequeue,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::DetEnqueue),
        Just(Op::DetDequeue),
        Just(Op::PlainEnqueue),
        Just(Op::PlainDequeue),
    ]
}

fn arb_adversary() -> impl Strategy<Value = WritebackAdversary> {
    prop_oneof![
        Just(WritebackAdversary::None),
        Just(WritebackAdversary::All),
        (0u64..1000, 0.0f64..=1.0)
            .prop_map(|(seed, prob)| WritebackAdversary::Random { seed, prob }),
    ]
}

fn arb_granularity() -> impl Strategy<Value = FlushGranularity> {
    prop_oneof![Just(FlushGranularity::Line), Just(FlushGranularity::Word)]
}

/// The crash property, shared between the generated cases below and the
/// explicit regression tests at the bottom of this file: run `script` with a
/// crash armed after `crash_after` pmem operations, then check that the
/// post-crash resolution and queue contents are exactly consistent with the
/// pre-crash bookkeeping.
fn check_crash_case(
    script: &[Op],
    crash_after: u64,
    adversary: WritebackAdversary,
    granularity: FlushGranularity,
) -> Result<(), TestCaseError> {
    {
        let q = DssQueue::with_granularity(1, 64, granularity);
        // Bookkeeping that survives the unwind (the "application journal"),
        // including which operation was in flight when the crash hit.
        let enq_done: std::cell::RefCell<Vec<u64>> = Default::default();
        let deq_done: std::cell::RefCell<Vec<u64>> = Default::default();
        let in_flight: std::cell::RefCell<Option<(Op, u64)>> = Default::default();

        q.pool().arm_crash_after(crash_after);
        let r = catch_unwind(AssertUnwindSafe(|| {
            for (i, op) in script.iter().enumerate() {
                let v = 1000 + i as u64;
                *in_flight.borrow_mut() = Some((*op, v));
                match op {
                    Op::DetEnqueue => {
                        q.prep_enqueue(0, v).unwrap();
                        q.exec_enqueue(0);
                        enq_done.borrow_mut().push(v);
                    }
                    Op::PlainEnqueue => {
                        q.enqueue(0, v).unwrap();
                        enq_done.borrow_mut().push(v);
                    }
                    Op::DetDequeue => {
                        q.prep_dequeue(0);
                        if let QueueResp::Value(x) = q.exec_dequeue(0) {
                            deq_done.borrow_mut().push(x);
                        }
                    }
                    Op::PlainDequeue => {
                        if let QueueResp::Value(x) = q.dequeue(0) {
                            deq_done.borrow_mut().push(x);
                        }
                    }
                }
                *in_flight.borrow_mut() = None;
            }
        }));
        q.pool().disarm_crash();
        let crashed = match r {
            Ok(()) => false,
            Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
            Err(p) => resume_unwind(p),
        };

        if crashed {
            q.pool().crash(&adversary);
            q.recover();
            q.rebuild_allocator();
        }

        let mut effective_enq: HashSet<u64> = enq_done.borrow().iter().copied().collect();
        let mut effective_deq: HashSet<u64> = deq_done.borrow().iter().copied().collect();
        if crashed {
            match q.resolve(0) {
                Resolved { op: Some(ResolvedOp::Enqueue(v)), resp: Some(QueueResp::Ok) } => {
                    effective_enq.insert(v);
                }
                Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Value(v)) } => {
                    effective_deq.insert(v);
                }
                _ => {}
            }
        }

        let remaining: Vec<u64> = q.snapshot_values();
        let remaining_set: HashSet<u64> = remaining.iter().copied().collect();
        prop_assert_eq!(remaining.len(), remaining_set.len(), "duplicate values in queue");

        // A *plain* operation interrupted by the crash is exactly the case
        // detectability exists for: the application cannot know whether it
        // took effect, so the invariant grants it the benefit of the doubt.
        let interrupted = if crashed { *in_flight.borrow() } else { None };
        if let Some((Op::PlainEnqueue, v)) = interrupted {
            if remaining_set.contains(&v) {
                effective_enq.insert(v);
            }
        }
        let plain_dequeue_interrupted = matches!(interrupted, Some((Op::PlainDequeue, _)));

        for v in &effective_deq {
            prop_assert!(effective_enq.contains(v), "dequeued {v} never enqueued");
            prop_assert!(!remaining_set.contains(v), "{v} dequeued yet still present");
        }
        for v in &remaining_set {
            prop_assert!(effective_enq.contains(v), "queued {v} never enqueued");
        }
        let vanished: Vec<u64> = effective_enq
            .iter()
            .filter(|v| !remaining_set.contains(v) && !effective_deq.contains(v))
            .copied()
            .collect();
        if plain_dequeue_interrupted {
            prop_assert!(
                vanished.len() <= 1,
                "at most the plain-dequeue victim may vanish: {vanished:?}"
            );
        } else {
            prop_assert!(vanished.is_empty(), "effective enqueues vanished: {vanished:?}");
        }

        // FIFO order of the surviving prefix: remaining values must appear
        // in increasing enqueue order (values increase with script index).
        let mut sorted = remaining.clone();
        sorted.sort_unstable();
        prop_assert_eq!(remaining, sorted, "FIFO order violated after crash");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-threaded script with a crash at an arbitrary pmem-op index:
    /// see [`check_crash_case`].
    #[test]
    fn crash_anywhere_never_loses_or_duplicates(
        script in prop::collection::vec(arb_op(), 1..25),
        crash_after in 1u64..600,
        adversary in arb_adversary(),
        granularity in arb_granularity(),
    ) {
        check_crash_case(&script, crash_after, adversary, granularity)?;
    }

    /// Without a crash, resolve always reports the last prepared operation
    /// with its true outcome, no matter what preceded it.
    #[test]
    fn resolve_tracks_last_prepared_op(
        script in prop::collection::vec(arb_op(), 1..30),
    ) {
        let q = DssQueue::new(1, 64);
        let mut last: Option<Resolved> = None;
        for (i, op) in script.iter().enumerate() {
            let v = 1000 + i as u64;
            match op {
                Op::DetEnqueue => {
                    q.prep_enqueue(0, v).unwrap();
                    q.exec_enqueue(0);
                    last = Some(Resolved {
                        op: Some(ResolvedOp::Enqueue(v)),
                        resp: Some(QueueResp::Ok),
                    });
                }
                Op::DetDequeue => {
                    q.prep_dequeue(0);
                    let resp = q.exec_dequeue(0);
                    last = Some(Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(resp) });
                }
                // Plain ops must not disturb detection state (Axiom 4).
                Op::PlainEnqueue => {
                    q.enqueue(0, v).unwrap();
                }
                Op::PlainDequeue => {
                    let _ = q.dequeue(0);
                }
            }
            if let Some(expected) = last {
                prop_assert_eq!(q.resolve(0), expected, "step {}", i);
            } else {
                prop_assert_eq!(q.resolve(0), Resolved { op: None, resp: None });
            }
        }
    }
}

/// The exact shrink recorded in `proptest_crash.proptest-regressions`: a
/// detectable/plain interleaving whose crash lands inside the sixth
/// operation's exec phase while the writeback adversary drops every
/// unflushed line. (The in-tree proptest stand-in does not replay the
/// regressions file, so the case is pinned here explicitly.)
#[test]
fn regression_det_plain_interleaving_crash_at_75() {
    use Op::*;
    let script = [
        DetEnqueue,
        PlainEnqueue,
        PlainEnqueue,
        PlainDequeue,
        PlainDequeue,
        DetEnqueue,
        PlainEnqueue,
        DetEnqueue,
    ];
    check_crash_case(&script, 75, WritebackAdversary::All, FlushGranularity::Line)
        .unwrap_or_else(|e| panic!("regression case failed: {e:?}"));
}

/// The same script as the recorded shrink, swept over every crash point it
/// can reach and both flush granularities, against the all-dropping
/// adversary. Broadens the pinned case so nearby crash points cannot
/// silently regress.
#[test]
fn regression_script_all_crash_points() {
    use Op::*;
    let script = [
        DetEnqueue,
        PlainEnqueue,
        PlainEnqueue,
        PlainDequeue,
        PlainDequeue,
        DetEnqueue,
        PlainEnqueue,
        DetEnqueue,
    ];
    for granularity in [FlushGranularity::Line, FlushGranularity::Word] {
        for crash_after in 1..300 {
            check_crash_case(&script, crash_after, WritebackAdversary::All, granularity)
                .unwrap_or_else(|e| {
                    panic!("crash_after={crash_after} {granularity:?} failed: {e:?}")
                });
        }
    }
}
