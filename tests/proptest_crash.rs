//! Property-based crash testing of the DSS queue.
//!
//! For arbitrary operation scripts, crash points, writeback adversaries,
//! and flush granularities: after crash + recovery, `resolve` must answer
//! consistently with the persisted queue state, and no value may be lost,
//! duplicated, or invented.

use std::collections::HashSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use dss::core::{
    CombiningQueue, DetectableCas, DssQueue, Resolved, ResolvedCas, ResolvedOp, Universal,
};
use dss::pmem::{CrashSignal, FlushGranularity, WritebackAdversary};
use dss::spec::types::{QueueResp, StackOp, StackSpec};

#[derive(Clone, Copy, Debug)]
enum Op {
    DetEnqueue,
    DetDequeue,
    PlainEnqueue,
    PlainDequeue,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::DetEnqueue),
        Just(Op::DetDequeue),
        Just(Op::PlainEnqueue),
        Just(Op::PlainDequeue),
    ]
}

fn arb_adversary() -> impl Strategy<Value = WritebackAdversary> {
    prop_oneof![
        Just(WritebackAdversary::None),
        Just(WritebackAdversary::All),
        (0u64..1000, 0.0f64..=1.0)
            .prop_map(|(seed, prob)| WritebackAdversary::Random { seed, prob }),
    ]
}

fn arb_granularity() -> impl Strategy<Value = FlushGranularity> {
    prop_oneof![Just(FlushGranularity::Line), Just(FlushGranularity::Word)]
}

/// The crash property, shared between the generated cases below and the
/// explicit regression tests at the bottom of this file: run `script` with a
/// crash armed after `crash_after` pmem operations, then check that the
/// post-crash resolution and queue contents are exactly consistent with the
/// pre-crash bookkeeping.
fn check_crash_case(
    script: &[Op],
    crash_after: u64,
    adversary: WritebackAdversary,
    granularity: FlushGranularity,
    coalesce: bool,
    per_address: bool,
) -> Result<(), TestCaseError> {
    {
        let q = DssQueue::with_granularity(1, 64, granularity);
        // With coalescing on, flushes issued between fence points sit in a
        // pending set that the crash drops wholesale — the strictest
        // persistence schedule the write-behind layer can produce.
        // Per-address drains narrow each fence point to the lines it
        // orders against, widening what the crash can drop further still.
        q.pool().set_coalescing(coalesce);
        q.pool().set_per_address_drains(per_address);
        // Register before arming so crash indices stay relative to the ops.
        let h0 = q.register_thread().unwrap();
        // Bookkeeping that survives the unwind (the "application journal"),
        // including which operation was in flight when the crash hit.
        let enq_done: std::cell::RefCell<Vec<u64>> = Default::default();
        let deq_done: std::cell::RefCell<Vec<u64>> = Default::default();
        let in_flight: std::cell::RefCell<Option<(Op, u64)>> = Default::default();

        q.pool().arm_crash_after(crash_after);
        let r = catch_unwind(AssertUnwindSafe(|| {
            for (i, op) in script.iter().enumerate() {
                let v = 1000 + i as u64;
                *in_flight.borrow_mut() = Some((*op, v));
                match op {
                    Op::DetEnqueue => {
                        q.prep_enqueue(h0, v).unwrap();
                        q.exec_enqueue(h0);
                        enq_done.borrow_mut().push(v);
                    }
                    Op::PlainEnqueue => {
                        q.enqueue(h0, v).unwrap();
                        enq_done.borrow_mut().push(v);
                    }
                    Op::DetDequeue => {
                        q.prep_dequeue(h0);
                        if let QueueResp::Value(x) = q.exec_dequeue(h0) {
                            deq_done.borrow_mut().push(x);
                        }
                    }
                    Op::PlainDequeue => {
                        if let QueueResp::Value(x) = q.dequeue(h0) {
                            deq_done.borrow_mut().push(x);
                        }
                    }
                }
                *in_flight.borrow_mut() = None;
            }
        }));
        q.pool().disarm_crash();
        let crashed = match r {
            Ok(()) => false,
            Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
            Err(p) => resume_unwind(p),
        };

        if crashed {
            q.pool().crash(&adversary);
            q.recover();
            q.rebuild_allocator();
        }

        let mut effective_enq: HashSet<u64> = enq_done.borrow().iter().copied().collect();
        let mut effective_deq: HashSet<u64> = deq_done.borrow().iter().copied().collect();
        if crashed {
            match q.resolve(h0) {
                Resolved { op: Some(ResolvedOp::Enqueue(v)), resp: Some(QueueResp::Ok) } => {
                    effective_enq.insert(v);
                }
                Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Value(v)) } => {
                    effective_deq.insert(v);
                }
                _ => {}
            }
        }

        let remaining: Vec<u64> = q.snapshot_values();
        let remaining_set: HashSet<u64> = remaining.iter().copied().collect();
        prop_assert_eq!(remaining.len(), remaining_set.len(), "duplicate values in queue");

        // A *plain* operation interrupted by the crash is exactly the case
        // detectability exists for: the application cannot know whether it
        // took effect, so the invariant grants it the benefit of the doubt.
        let interrupted = if crashed { *in_flight.borrow() } else { None };
        if let Some((Op::PlainEnqueue, v)) = interrupted {
            if remaining_set.contains(&v) {
                effective_enq.insert(v);
            }
        }
        let plain_dequeue_interrupted = matches!(interrupted, Some((Op::PlainDequeue, _)));

        for v in &effective_deq {
            prop_assert!(effective_enq.contains(v), "dequeued {v} never enqueued");
            prop_assert!(!remaining_set.contains(v), "{v} dequeued yet still present");
        }
        for v in &remaining_set {
            prop_assert!(effective_enq.contains(v), "queued {v} never enqueued");
        }
        let vanished: Vec<u64> = effective_enq
            .iter()
            .filter(|v| !remaining_set.contains(v) && !effective_deq.contains(v))
            .copied()
            .collect();
        if plain_dequeue_interrupted {
            prop_assert!(
                vanished.len() <= 1,
                "at most the plain-dequeue victim may vanish: {vanished:?}"
            );
        } else {
            prop_assert!(vanished.is_empty(), "effective enqueues vanished: {vanished:?}");
        }

        // FIFO order of the surviving prefix: remaining values must appear
        // in increasing enqueue order (values increase with script index).
        let mut sorted = remaining.clone();
        sorted.sort_unstable();
        prop_assert_eq!(remaining, sorted, "FIFO order violated after crash");
    }
    Ok(())
}

/// The combining-layer crash property: the same conservation invariant as
/// [`check_crash_case`], driven through the flat-combining execution
/// layer. Single-threaded, so the victim thread *is* the combiner — the
/// armed crash lands inside `combine`'s persist phases (a combiner killed
/// mid-batch), and recovery must resolve the half-applied batch from its
/// durable prefix alone. Every combining operation is detectable, so no
/// benefit-of-the-doubt case exists: nothing may vanish, ever.
fn check_combining_crash_case(
    script: &[bool], // true = enqueue, false = dequeue
    crash_after: u64,
    adversary: WritebackAdversary,
    granularity: FlushGranularity,
    coalesce: bool,
    per_address: bool,
) -> Result<(), TestCaseError> {
    let q = CombiningQueue::with_granularity(1, 64, granularity);
    q.pool().set_coalescing(coalesce);
    q.pool().set_per_address_drains(per_address);
    let h0 = q.register_thread().unwrap();
    let enq_done: std::cell::RefCell<Vec<u64>> = Default::default();
    let deq_done: std::cell::RefCell<Vec<u64>> = Default::default();

    q.pool().arm_crash_after(crash_after);
    let r = catch_unwind(AssertUnwindSafe(|| {
        for (i, &enq) in script.iter().enumerate() {
            let v = 1000 + i as u64;
            if enq {
                q.enqueue(h0, v).unwrap();
                enq_done.borrow_mut().push(v);
            } else if let QueueResp::Value(x) = q.dequeue(h0) {
                deq_done.borrow_mut().push(x);
            }
        }
    }));
    q.pool().disarm_crash();
    let crashed = match r {
        Ok(()) => false,
        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
        Err(p) => resume_unwind(p),
    };
    if crashed {
        q.pool().crash(&adversary);
        q.recover();
        q.rebuild_allocator();
    }

    let mut effective_enq: HashSet<u64> = enq_done.borrow().iter().copied().collect();
    let mut effective_deq: HashSet<u64> = deq_done.borrow().iter().copied().collect();
    if crashed {
        // resolve reports the last *prepared* operation; a completed one
        // is already journalled, so the inserts are idempotent.
        match q.resolve(h0) {
            Resolved { op: Some(ResolvedOp::Enqueue(v)), resp: Some(QueueResp::Ok) } => {
                effective_enq.insert(v);
            }
            Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Value(v)) } => {
                effective_deq.insert(v);
            }
            _ => {}
        }
    }

    let remaining: Vec<u64> = q.snapshot_values();
    let remaining_set: HashSet<u64> = remaining.iter().copied().collect();
    prop_assert_eq!(remaining.len(), remaining_set.len(), "duplicate values in queue");
    for v in &effective_deq {
        prop_assert!(effective_enq.contains(v), "dequeued {v} never enqueued");
        prop_assert!(!remaining_set.contains(v), "{v} dequeued yet still present");
    }
    for v in &remaining_set {
        prop_assert!(effective_enq.contains(v), "queued {v} never enqueued");
    }
    let vanished: Vec<u64> = effective_enq
        .iter()
        .filter(|v| !remaining_set.contains(v) && !effective_deq.contains(v))
        .copied()
        .collect();
    prop_assert!(vanished.is_empty(), "effective enqueues vanished: {vanished:?}");

    let mut sorted = remaining.clone();
    sorted.sort_unstable();
    prop_assert_eq!(remaining, sorted, "FIFO order violated after crash");
    Ok(())
}

/// Concurrent combining crash: every worker arms its own per-thread crash
/// countdown, so a crash can land in the combiner mid-batch *or* in a
/// waiter parked on its announce flag — a parked waiter's lease probe is
/// an instrumented pool load precisely so that its countdown keeps
/// running while it waits (including through the stale-lease probe that a
/// dead combiner's still-LIVE slot keeps failing). After every worker has
/// crashed, centralized recovery adopts the slots and value conservation
/// must hold across announced, half-combined, and parked operations.
fn check_combining_concurrent_crash_case(
    seed: u64,
    adversary: WritebackAdversary,
    coalesce: bool,
    per_address: bool,
) -> Result<(), TestCaseError> {
    const THREADS: usize = 3;
    // Far more pairs than any countdown can survive: every worker crashes.
    const PAIRS: u64 = 400;
    let q = CombiningQueue::new(THREADS, 1024);
    q.pool().set_coalescing(coalesce);
    q.pool().set_per_address_drains(per_address);
    let hs: Vec<_> = (0..THREADS).map(|_| q.register_thread().unwrap()).collect();
    let enq_done: std::sync::Mutex<Vec<u64>> = Default::default();
    let deq_done: std::sync::Mutex<Vec<u64>> = Default::default();

    std::thread::scope(|s| {
        let q = &q;
        let enq_done = &enq_done;
        let deq_done = &deq_done;
        for (tid, &h) in hs.iter().enumerate() {
            s.spawn(move || {
                let crash_after =
                    20 + seed.wrapping_mul(2654435761).wrapping_add(tid as u64 * 97) % 300;
                q.pool().arm_crash_after(crash_after);
                let r = catch_unwind(AssertUnwindSafe(|| {
                    for i in 0..PAIRS {
                        let v = ((tid as u64) << 32) | i;
                        if q.enqueue(h, v).is_err() {
                            break;
                        }
                        enq_done.lock().unwrap().push(v);
                        if let QueueResp::Value(x) = q.dequeue(h) {
                            deq_done.lock().unwrap().push(x);
                        }
                    }
                }));
                q.pool().disarm_crash();
                if let Err(p) = r {
                    assert!(p.downcast_ref::<CrashSignal>().is_some(), "non-crash panic");
                }
            });
        }
    });

    q.pool().crash(&adversary);
    let adopted = q.recover();
    q.rebuild_allocator();

    let mut effective_enq: HashSet<u64> = enq_done.lock().unwrap().iter().copied().collect();
    let mut effective_deq: HashSet<u64> = deq_done.lock().unwrap().iter().copied().collect();
    for &h in &adopted {
        match q.resolve(h) {
            Resolved { op: Some(ResolvedOp::Enqueue(v)), resp: Some(QueueResp::Ok) } => {
                effective_enq.insert(v);
            }
            Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Value(v)) } => {
                effective_deq.insert(v);
            }
            _ => {}
        }
    }
    let remaining: Vec<u64> = q.snapshot_values();
    let remaining_set: HashSet<u64> = remaining.iter().copied().collect();
    prop_assert_eq!(remaining.len(), remaining_set.len(), "duplicate values in queue");
    for v in &effective_deq {
        prop_assert!(effective_enq.contains(v), "dequeued {v} never enqueued");
        prop_assert!(!remaining_set.contains(v), "{v} dequeued yet still present");
    }
    for v in &remaining_set {
        prop_assert!(effective_enq.contains(v), "queued {v} never enqueued");
    }
    let vanished: Vec<u64> = effective_enq
        .iter()
        .filter(|v| !remaining_set.contains(v) && !effective_deq.contains(v))
        .copied()
        .collect();
    prop_assert!(vanished.is_empty(), "effective enqueues vanished: {vanished:?}");
    Ok(())
}

/// The CAS crash property: drive a chain of detectable CASes that each
/// expect the value installed by the previous one, crash after
/// `crash_after` pmem operations, and check that `read` and `resolve`
/// stay mutually consistent. Completed operations drain before returning,
/// so their effects are unconditionally durable; only the interrupted
/// operation's fate is left to the adversary, and `resolve` must report it
/// truthfully.
fn check_cas_crash_case(
    ops: usize,
    crash_after: u64,
    adversary: WritebackAdversary,
    coalesce: bool,
    per_address: bool,
) -> Result<(), TestCaseError> {
    let c = DetectableCas::new(1, 64);
    c.pool().set_coalescing(coalesce);
    c.pool().set_per_address_drains(per_address);
    let h0 = c.register_thread().unwrap();
    // Value installed by the last *completed* CAS (the "application
    // journal"), surviving the unwind.
    let committed = std::cell::Cell::new(0u64);
    c.pool().arm_crash_after(crash_after);
    let r = catch_unwind(AssertUnwindSafe(|| {
        for i in 0..ops {
            let v = 1000 + i as u64;
            c.prep_cas(h0, committed.get(), v, i as u64);
            assert!(c.exec_cas(h0), "single-threaded CAS with a fresh read cannot fail");
            committed.set(v);
        }
    }));
    c.pool().disarm_crash();
    let crashed = match r {
        Ok(()) => false,
        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
        Err(p) => resume_unwind(p),
    };
    let committed = committed.get();
    if !crashed {
        prop_assert_eq!(c.read(h0), committed);
        return Ok(());
    }
    c.pool().crash(&adversary);
    c.rebuild_allocator();
    let now = c.read(h0);
    match c.resolve(h0) {
        // The last announced CAS took effect: the value must show it.
        ResolvedCas { op: Some((_, v, _)), resp: Some(true) } => {
            prop_assert_eq!(now, v, "resolved-successful CAS not visible");
        }
        // Announced but never applied: the value is still what it expected.
        ResolvedCas { op: Some((e, _, _)), resp: None } => {
            prop_assert_eq!(now, e, "unapplied CAS must leave its expected value");
        }
        // No announce ever persisted, so no CAS can have completed (every
        // completed CAS persists its announce before returning).
        ResolvedCas { op: None, resp: None } => {
            prop_assert_eq!(committed, 0, "completed CAS lost its announce");
            prop_assert_eq!(now, 0, "effect without a persisted announce");
        }
        other => {
            return Err(TestCaseError::Fail(format!(
                "impossible resolution for a non-contended matching CAS: {other:?}"
            )));
        }
    }
    Ok(())
}

/// The universal-construction crash property: drive a script of detectable
/// stack operations through `Universal<StackSpec>`, crash after
/// `crash_after` pmem operations, and check that the surviving history is
/// exactly the completed prefix plus — per `resolve`'s verdict — the
/// interrupted operation.
fn check_universal_crash_case(
    script: &[bool], // true = Push, false = Pop
    crash_after: u64,
    adversary: WritebackAdversary,
    coalesce: bool,
    per_address: bool,
) -> Result<(), TestCaseError> {
    let u = Universal::new(StackSpec, 1, 64);
    u.pool().set_coalescing(coalesce);
    u.pool().set_per_address_drains(per_address);
    let h0 = u.register_thread().unwrap();
    let apply = |stack: &mut Vec<u64>, i: usize| match script[i] {
        true => stack.push(2000 + i as u64),
        false => {
            stack.pop();
        }
    };
    // Index of the next un-executed operation (the "application journal").
    let done = std::cell::Cell::new(0usize);
    u.pool().arm_crash_after(crash_after);
    let r = catch_unwind(AssertUnwindSafe(|| {
        for (i, &push) in script.iter().enumerate() {
            let op = if push { StackOp::Push(2000 + i as u64) } else { StackOp::Pop };
            u.prep(h0, op, i as u64);
            let _ = u.exec(h0);
            done.set(i + 1);
        }
    }));
    u.pool().disarm_crash();
    let crashed = match r {
        Ok(()) => false,
        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
        Err(p) => resume_unwind(p),
    };
    if crashed {
        u.pool().crash(&adversary);
        u.rebuild_allocator();
    }
    let done = done.get();
    let mut expected: Vec<u64> = Vec::new();
    for i in 0..done {
        apply(&mut expected, i);
    }
    if !crashed {
        prop_assert_eq!(u.state(), expected);
        return Ok(());
    }
    // Each completed exec drains its link before returning, so the
    // persisted history holds every completed operation; only the
    // interrupted one's fate is open, and resolve must report it.
    let in_flight_linked = match u.resolve(h0) {
        (Some((_, seq)), resp) if seq == done as u64 => resp.is_some(),
        // resolve reports an earlier (completed) announce, or none at all:
        // the interrupted op's announce never persisted, so its link —
        // which exec orders after the announce — cannot have either.
        _ => false,
    };
    if in_flight_linked {
        prop_assert!(done < script.len(), "all ops completed yet one resolved in-flight");
        apply(&mut expected, done);
    }
    prop_assert_eq!(u.state(), expected, "history != completed prefix (+ resolved in-flight)");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-threaded script with a crash at an arbitrary pmem-op index:
    /// see [`check_crash_case`].
    #[test]
    fn crash_anywhere_never_loses_or_duplicates(
        script in prop::collection::vec(arb_op(), 1..25),
        crash_after in 1u64..600,
        adversary in arb_adversary(),
        granularity in arb_granularity(),
        coalesce in proptest::bool::ANY,
        per_address in proptest::bool::ANY,
    ) {
        check_crash_case(&script, crash_after, adversary, granularity, coalesce, per_address)?;
    }

    /// The CAS analogue of the queue property, over both coalescing modes:
    /// see [`check_cas_crash_case`].
    #[test]
    fn cas_crash_anywhere_resolves_consistently(
        ops in 1usize..16,
        crash_after in 1u64..300,
        adversary in arb_adversary(),
        coalesce in proptest::bool::ANY,
        per_address in proptest::bool::ANY,
    ) {
        check_cas_crash_case(ops, crash_after, adversary, coalesce, per_address)?;
    }

    /// The universal-construction analogue, with the drain-granularity
    /// axis armed: see [`check_universal_crash_case`].
    #[test]
    fn universal_crash_anywhere_resolves_consistently(
        script in prop::collection::vec(proptest::bool::ANY, 1..12),
        crash_after in 1u64..400,
        adversary in arb_adversary(),
        coalesce in proptest::bool::ANY,
        per_address in proptest::bool::ANY,
    ) {
        check_universal_crash_case(&script, crash_after, adversary, coalesce, per_address)?;
    }

    /// The flat-combining execution layer under the same single-threaded
    /// crash sweep — the victim is the combiner: see
    /// [`check_combining_crash_case`].
    #[test]
    fn combining_crash_anywhere_never_loses_or_duplicates(
        script in prop::collection::vec(proptest::bool::ANY, 1..20),
        crash_after in 1u64..600,
        adversary in arb_adversary(),
        granularity in arb_granularity(),
        coalesce in proptest::bool::ANY,
        per_address in proptest::bool::ANY,
    ) {
        check_combining_crash_case(
            &script, crash_after, adversary, granularity, coalesce, per_address,
        )?;
    }

    /// Without a crash, resolve always reports the last prepared operation
    /// with its true outcome, no matter what preceded it.
    #[test]
    fn resolve_tracks_last_prepared_op(
        script in prop::collection::vec(arb_op(), 1..30),
    ) {
        let q = DssQueue::new(1, 64);
        let h0 = q.register_thread().unwrap();
        let mut last: Option<Resolved> = None;
        for (i, op) in script.iter().enumerate() {
            let v = 1000 + i as u64;
            match op {
                Op::DetEnqueue => {
                    q.prep_enqueue(h0, v).unwrap();
                    q.exec_enqueue(h0);
                    last = Some(Resolved {
                        op: Some(ResolvedOp::Enqueue(v)),
                        resp: Some(QueueResp::Ok),
                    });
                }
                Op::DetDequeue => {
                    q.prep_dequeue(h0);
                    let resp = q.exec_dequeue(h0);
                    last = Some(Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(resp) });
                }
                // Plain ops must not disturb detection state (Axiom 4).
                Op::PlainEnqueue => {
                    q.enqueue(h0, v).unwrap();
                }
                Op::PlainDequeue => {
                    let _ = q.dequeue(h0);
                }
            }
            if let Some(expected) = last {
                prop_assert_eq!(q.resolve(h0), expected, "step {}", i);
            } else {
                prop_assert_eq!(q.resolve(h0), Resolved { op: None, resp: None });
            }
        }
    }
}

proptest! {
    // Concurrent cases spawn real threads (with parked waiters sleeping in
    // 50µs slices), so they cost milliseconds each; fewer cases, same
    // coverage per case of the combiner/waiter crash interleavings.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Three combining workers, each with its own armed crash countdown:
    /// crashes land in combiners mid-batch and in waiters parked on their
    /// announce flags — see [`check_combining_concurrent_crash_case`].
    #[test]
    fn combining_concurrent_crash_conserves_values(
        seed in 0u64..1_000_000,
        adversary in arb_adversary(),
        coalesce in proptest::bool::ANY,
        per_address in proptest::bool::ANY,
    ) {
        check_combining_concurrent_crash_case(seed, adversary, coalesce, per_address)?;
    }
}

/// The exact shrink recorded in `proptest_crash.proptest-regressions`: a
/// detectable/plain interleaving whose crash lands inside the sixth
/// operation's exec phase while the writeback adversary drops every
/// unflushed line. (The in-tree proptest stand-in does not replay the
/// regressions file, so the case is pinned here explicitly.)
#[test]
fn regression_det_plain_interleaving_crash_at_75() {
    use Op::*;
    let script = [
        DetEnqueue,
        PlainEnqueue,
        PlainEnqueue,
        PlainDequeue,
        PlainDequeue,
        DetEnqueue,
        PlainEnqueue,
        DetEnqueue,
    ];
    for (coalesce, per_address) in [(false, false), (true, false), (true, true)] {
        check_crash_case(
            &script,
            75,
            WritebackAdversary::All,
            FlushGranularity::Line,
            coalesce,
            per_address,
        )
        .unwrap_or_else(|e| {
            panic!("regression case (coalesce={coalesce} per_address={per_address}) failed: {e:?}")
        });
    }
}

/// Deterministic companion to the generated CAS cases: a three-CAS chain
/// swept over every crash point it can reach, with write-behind coalescing
/// ON under both drain granularities, against all three adversaries.
#[test]
fn cas_chain_all_crash_points_with_coalescing() {
    for adversary in [
        WritebackAdversary::None,
        WritebackAdversary::All,
        WritebackAdversary::Random { seed: 7, prob: 0.5 },
    ] {
        for per_address in [false, true] {
            for crash_after in 1..120 {
                check_cas_crash_case(3, crash_after, adversary.clone(), true, per_address)
                    .unwrap_or_else(|e| {
                        panic!(
                            "crash_after={crash_after} {adversary:?} \
                             per_address={per_address} failed: {e:?}"
                        )
                    });
            }
        }
    }
}

/// The universal construction swept over every crash point a push/pop
/// script can reach, with coalescing ON and per-address drains armed,
/// against all three adversaries. The whole-set run (`per_address=false`)
/// doubles as the baseline the per-address verdicts must agree with.
#[test]
fn universal_all_crash_points_with_per_address_drains() {
    let script = [true, true, false, true, false, false];
    for adversary in [
        WritebackAdversary::None,
        WritebackAdversary::All,
        WritebackAdversary::Random { seed: 11, prob: 0.5 },
    ] {
        for per_address in [false, true] {
            for crash_after in 1..200 {
                check_universal_crash_case(
                    &script,
                    crash_after,
                    adversary.clone(),
                    true,
                    per_address,
                )
                .unwrap_or_else(|e| {
                    panic!(
                        "crash_after={crash_after} {adversary:?} \
                             per_address={per_address} failed: {e:?}"
                    )
                });
            }
        }
    }
}

/// The combining layer swept over every crash point a mixed script can
/// reach, across the coalesce × per-address grid, against the all-dropping
/// adversary: every persist-phase boundary inside `combine` — links
/// durable but completions not, completions durable but claims not, empty
/// verdicts in flight — is hit deterministically.
#[test]
fn combining_script_all_crash_points() {
    let script = [true, true, false, true, false, false, true, false];
    for (coalesce, per_address) in [(false, false), (true, false), (true, true)] {
        for crash_after in 1..300 {
            check_combining_crash_case(
                &script,
                crash_after,
                WritebackAdversary::All,
                FlushGranularity::Line,
                coalesce,
                per_address,
            )
            .unwrap_or_else(|e| {
                panic!(
                    "crash_after={crash_after} coalesce={coalesce} \
                         per_address={per_address} failed: {e:?}"
                )
            });
        }
    }
}

/// The same script as the recorded shrink, swept over every crash point it
/// can reach and both flush granularities, against the all-dropping
/// adversary. Broadens the pinned case so nearby crash points cannot
/// silently regress.
#[test]
fn regression_script_all_crash_points() {
    use Op::*;
    let script = [
        DetEnqueue,
        PlainEnqueue,
        PlainEnqueue,
        PlainDequeue,
        PlainDequeue,
        DetEnqueue,
        PlainEnqueue,
        DetEnqueue,
    ];
    for granularity in [FlushGranularity::Line, FlushGranularity::Word] {
        for (coalesce, per_address) in [(false, false), (true, false), (true, true)] {
            for crash_after in 1..300 {
                check_crash_case(
                    &script,
                    crash_after,
                    WritebackAdversary::All,
                    granularity,
                    coalesce,
                    per_address,
                )
                .unwrap_or_else(|e| {
                    panic!(
                        "crash_after={crash_after} {granularity:?} coalesce={coalesce} \
                             per_address={per_address} failed: {e:?}"
                    )
                });
            }
        }
    }
}
